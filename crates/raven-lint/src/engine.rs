//! File walk, per-crate rule dispatch, the workspace call graph, allowlist
//! filtering, and the stale-entry check.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::SourceFile;
use crate::rules::{self, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The audit result: surviving findings plus scan statistics.
#[derive(Debug)]
pub struct AuditReport {
    /// Findings not covered by any allowlist entry, sorted by
    /// (path, line, rule).
    pub findings: Vec<Finding>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by the allowlist.
    pub allowed: usize,
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path, cfg: &Config) -> io::Result<AuditReport> {
    let mut paths = Vec::new();
    for dir in &cfg.roots {
        collect_rs(&root.join(dir), &mut paths)?;
    }
    // Deterministic order: findings and stale-entry reports must not
    // depend on directory iteration order.
    paths.sort();
    let rel = |p: &Path| -> String {
        p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/")
    };
    let mut files = Vec::new();
    for p in &paths {
        let path = rel(p);
        if cfg.exclude.iter().any(|e| covered_by(&path, e)) {
            continue;
        }
        let src = fs::read_to_string(p)?;
        let is_test_file = path.split('/').any(|seg| seg == "tests");
        files.push(SourceFile::parse(&path, &src, is_test_file));
    }

    let mut raw = Vec::new();
    for file in &files {
        let krate = crate_of(&file.path);
        raw.extend(rules::token_rule(
            file,
            &cfg.wall_clock_tokens,
            "R1",
            "no-wall-clock",
            "reads the wall clock; only virtual SimTime may influence artifacts — \
             allowlist the module if this is a sanctioned timing surface",
        ));
        if cfg.unordered_crates.iter().any(|c| c == krate) {
            raw.extend(rules::token_rule(
                file,
                &cfg.unordered_tokens,
                "R2",
                "no-unordered-iteration",
                "iterates in hash order in a crate that serializes or merges results; \
                 use BTreeMap/BTreeSet or sort before emitting",
            ));
        }
        if !cfg.stream_fns.is_empty() {
            raw.extend(rules::rng_stream_call_sites(file, &cfg.stream_fns));
        }
        raw.extend(rules::exhaustive_safety_match(file, &cfg.watched_enums));
        raw.extend(rules::unsafe_audit(file, &cfg.unsafe_files));
        if cfg.float_cmp_crates.iter().any(|c| c == krate) {
            raw.extend(rules::float_cmp(file));
        }
    }

    // Call-graph rules: R3/R8 over every fn reachable from the hot-path
    // entry points, R10 everywhere.
    let graph = CallGraph::build(&files);
    if !cfg.hot_path_entry_points.is_empty() {
        let reach = graph.reachable_from(&cfg.hot_path_entry_points);
        raw.extend(rules::hot_path_rule(
            &files,
            &graph,
            &reach,
            &cfg.panic_tokens,
            "R3",
            "no-panic-in-hot-path",
            "can panic inside the control cycle; return a typed error or restructure \
             so the failure is impossible (panic isolation belongs to the campaign \
             executor, not the safety loop)",
        ));
        raw.extend(rules::hot_path_rule(
            &files,
            &graph,
            &reach,
            &cfg.alloc_tokens,
            "R8",
            "no-alloc-in-hot-path",
            "allocates on the heap inside the control cycle; preallocate in the \
             constructor or reuse a fixed-capacity buffer so the 1 ms deadline never \
             meets the allocator",
        ));
    }
    raw.extend(rules::lock_discipline(&files, &graph));

    // R11: golden artifacts vs the structs that serialize them.
    if !cfg.artifact_globs.is_empty() || !cfg.artifact_roots.is_empty() {
        let mut artifact_paths = Vec::new();
        for pattern in &cfg.artifact_globs {
            artifact_paths.extend(glob_files(root, pattern)?);
        }
        for r in &cfg.artifact_roots {
            artifact_paths.extend(glob_files(root, &r.json)?);
        }
        artifact_paths.sort();
        artifact_paths.dedup();
        let mut artifacts = Vec::new();
        for p in &artifact_paths {
            artifacts.push((p.clone(), fs::read_to_string(root.join(p))?));
        }
        raw.extend(rules::artifact_schema(cfg, &files, &graph, &artifacts));
    }

    if !cfg.registry_path.is_empty() {
        let registry_src = fs::read_to_string(root.join(&cfg.registry_path))?;
        let doc_src = fs::read_to_string(root.join(&cfg.doc_path))?;
        raw.extend(rules::doc_drift(cfg, &registry_src, &doc_src, &files));
        raw.extend(rules::stream_registry_drift(cfg, &registry_src, &doc_src));
        for scoped in &cfg.scoped_docs {
            let scoped_src = fs::read_to_string(root.join(&scoped.doc))?;
            raw.extend(rules::scoped_doc_drift(
                scoped,
                &cfg.registry_path,
                &registry_src,
                &scoped_src,
            ));
        }
    }

    // Allowlist pass: drop covered findings, remember which entries fired.
    let mut used = vec![false; cfg.allows.len()];
    let mut findings = Vec::new();
    let mut allowed = 0usize;
    for f in raw {
        let cover =
            cfg.allows.iter().position(|a| a.rule == f.rule && a.covers(&f.path, &f.snippet));
        match cover {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => findings.push(f),
        }
    }
    // A stale exception is itself a finding: the allowlist must shrink
    // when the code it excuses goes away.
    for (i, a) in cfg.allows.iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                path: "raven-lint.toml".to_string(),
                line: 1,
                rule: "CONFIG".to_string(),
                name: "stale-allowlist-entry".to_string(),
                snippet: format!("rule = \"{}\", path = \"{}\"", a.rule, a.path),
                hint: "this [[allow]] entry matched no finding; delete it (or fix its \
                       `path`/`contains`) so the exception list stays honest"
                    .to_string(),
            });
        }
    }
    findings.sort();
    Ok(AuditReport { findings, files_scanned: files.len(), allowed })
}

/// Does `path` fall under exclude/allow prefix `pat` (exact file, or a
/// directory prefix when `pat` ends with `/`)?
fn covered_by(path: &str, pat: &str) -> bool {
    if let Some(dir) = pat.strip_suffix('/') {
        path == dir || path.starts_with(pat)
    } else {
        path == pat
    }
}

/// Which crate owns a workspace-relative path. Top-level `src`/`tests`/
/// `examples` belong to the root `raven-repro` package.
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") | Some("vendor") => parts.next().unwrap_or(""),
        _ => "raven-repro",
    }
}

/// Expands a `dir/stem_*.json`-style pattern: one optional `*`, filename
/// component only, non-recursive. A pattern without `*` matches the exact
/// file if it exists. Returned paths are workspace-relative and sorted.
fn glob_files(root: &Path, pattern: &str) -> io::Result<Vec<String>> {
    let (dir, fname) = pattern.rsplit_once('/').unwrap_or(("", pattern));
    let joined = |name: &str| {
        if dir.is_empty() {
            name.to_string()
        } else {
            format!("{dir}/{name}")
        }
    };
    let dir_path = root.join(dir);
    let mut out = Vec::new();
    let Some((prefix, suffix)) = fname.split_once('*') else {
        if dir_path.join(fname).is_file() {
            out.push(joined(fname));
        }
        return Ok(out);
    };
    if !dir_path.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(&dir_path)? {
        let entry = entry?;
        if !entry.path().is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        if name.len() >= prefix.len() + suffix.len()
            && name.starts_with(prefix)
            && name.ends_with(suffix)
        {
            out.push(joined(&name));
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_resolution() {
        assert_eq!(crate_of("crates/raven-detect/src/detector.rs"), "raven-detect");
        assert_eq!(crate_of("src/lib.rs"), "raven-repro");
        assert_eq!(crate_of("tests/end_to_end.rs"), "raven-repro");
        assert_eq!(crate_of("examples/quickstart.rs"), "raven-repro");
    }

    #[test]
    fn exclusion_patterns() {
        assert!(covered_by("vendor/serde/src/lib.rs", "vendor/"));
        assert!(covered_by("a/b.rs", "a/b.rs"));
        assert!(!covered_by("a/bc.rs", "a/b"));
    }
}
