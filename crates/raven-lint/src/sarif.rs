//! SARIF 2.1.0 emission, the baseline file, and the rule catalog.
//!
//! The workspace builds offline against a JSON stub, so — like
//! `simbus::span::ChromeTraceBuilder` — the SARIF document is written by
//! hand: one `run`, the full rule catalog under `tool.driver.rules`, and
//! one `result` per finding with a stable `fingerprints` entry. The same
//! fingerprint keys the `--baseline` file: CI records the accepted
//! findings once and fails only on *new* ones, so a PR is annotated with
//! what it introduced rather than everything the tree ever carried.

use crate::rules::Finding;
use serde::{Deserialize, Serialize};

/// One catalog entry, shown by `--list-rules` and embedded in SARIF.
pub struct RuleInfo {
    pub id: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
    pub scope: &'static str,
}

/// The full rule catalog, in report order.
pub fn catalog() -> &'static [RuleInfo] {
    const CATALOG: [RuleInfo; 12] = [
        RuleInfo {
            id: "R1",
            name: "no-wall-clock",
            summary: "wall-clock reads only in allowlisted timing surfaces",
            scope: "all crates",
        },
        RuleInfo {
            id: "R2",
            name: "no-unordered-iteration",
            summary: "HashMap/HashSet forbidden where iteration order can reach an artifact",
            scope: "serialized/merged-result crates",
        },
        RuleInfo {
            id: "R3",
            name: "no-panic-in-hot-path",
            summary: "no unwrap/expect/panic! in any fn reachable from a hot-path entry point",
            scope: "call graph from [rules.hot_path] entry points",
        },
        RuleInfo {
            id: "R4",
            name: "exhaustive-safety-match",
            summary: "no wildcard arms in matches over safety-critical enums",
            scope: "all crates",
        },
        RuleInfo {
            id: "R5",
            name: "doc-code-drift",
            summary: "obs registries and their docs must agree, both directions",
            scope: "simbus::obs vs docs/OBSERVABILITY.md + scoped docs",
        },
        RuleInfo {
            id: "R6",
            name: "unsafe-audit",
            summary: "unsafe only in allowlisted files, each block with a SAFETY comment",
            scope: "all crates",
        },
        RuleInfo {
            id: "R7",
            name: "no-float-eq",
            summary: "no ==/!= against float literals",
            scope: "merged-artifact crates",
        },
        RuleInfo {
            id: "R8",
            name: "no-alloc-in-hot-path",
            summary: "no heap allocation in any fn reachable from a hot-path entry point",
            scope: "call graph from [rules.hot_path] entry points",
        },
        RuleInfo {
            id: "R9",
            name: "rng-stream-discipline",
            summary: "stream_rng/derive_seed labels come from simbus::obs::streams, unique",
            scope: "all crates",
        },
        RuleInfo {
            id: "R10",
            name: "lock-discipline",
            summary: "consistent lock order; no lock held across a call into locking code",
            scope: "all crates",
        },
        RuleInfo {
            id: "R11",
            name: "artifact-schema-drift",
            summary: "serialized-struct fields match golden artifact keys, both directions",
            scope: "[rules.artifact_schema] roots vs results/*.json",
        },
        RuleInfo {
            id: "CONFIG",
            name: "stale-allowlist-entry",
            summary: "every [[allow]] entry must still match a finding",
            scope: "raven-lint.toml",
        },
    ];
    &CATALOG
}

/// Looks a rule id up in the catalog.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    catalog().iter().find(|r| r.id == id)
}

/// Stable identity of a finding across line-number churn: rule, path, and
/// the offending snippet. Used for SARIF `fingerprints` and the baseline.
pub fn fingerprint(f: &Finding) -> String {
    format!("{}|{}|{}", f.rule, f.path, f.snippet)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document (one run, pretty-printed).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(4096 + findings.len() * 512);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"raven-lint\",\n");
    out.push_str("          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n");
    out.push_str(&format!("          \"version\": \"{}\",\n", esc(env!("CARGO_PKG_VERSION"))));
    out.push_str("          \"rules\": [\n");
    let rules = catalog();
    for (i, r) in rules.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": \
             {{\"text\": \"{}\"}}, \"properties\": {{\"scope\": \"{}\"}}}}{}\n",
            esc(r.id),
            esc(r.name),
            esc(r.summary),
            esc(r.scope),
            if i + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let rule_index = rules.iter().position(|r| r.id == f.rule).map(|p| p as i64).unwrap_or(-1);
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": \"[{}] {} — {}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}], \
             \"fingerprints\": {{\"raven/v1\": \"{}\"}}}}{}\n",
            esc(&f.rule),
            rule_index,
            esc(&f.name),
            esc(&f.snippet),
            esc(&f.hint),
            esc(&f.path),
            f.line,
            esc(&fingerprint(f)),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// The `--baseline` file: accepted finding fingerprints.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Baseline {
    pub version: u32,
    pub fingerprints: Vec<String>,
}

impl Baseline {
    /// Captures the given findings as a baseline (sorted, deduped).
    pub fn capture(findings: &[Finding]) -> Baseline {
        let mut fps: Vec<String> = findings.iter().map(fingerprint).collect();
        fps.sort();
        fps.dedup();
        Baseline { version: 1, fingerprints: fps }
    }

    /// Parses a baseline file.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid baseline: {e:?}"))
    }

    /// Renders the baseline as JSON.
    pub fn render(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Splits findings into `(new, suppressed)` relative to this baseline.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, usize) {
        let mut fresh = Vec::new();
        let mut suppressed = 0usize;
        for f in findings {
            if self.fingerprints.iter().any(|fp| *fp == fingerprint(f)) {
                suppressed += 1;
            } else {
                fresh.push(f);
            }
        }
        (fresh, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, snippet: &str) -> Finding {
        Finding {
            path: path.to_string(),
            line: 7,
            rule: rule.to_string(),
            name: "x".to_string(),
            snippet: snippet.to_string(),
            hint: "fix \"it\"".to_string(),
        }
    }

    #[test]
    fn sarif_is_valid_json_with_expected_shape() {
        let fs = vec![finding("R8", "crates/a/src/lib.rs", "let x = v.to_string();")];
        let doc = to_sarif(&fs);
        let v = serde_json::value_from_str(&doc).expect("SARIF must parse as JSON");
        assert_eq!(
            v.get("version").and_then(|x| match x {
                serde_json::Value::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("2.1.0")
        );
        let runs = match v.get("runs") {
            Some(serde_json::Value::Seq(r)) => r,
            other => panic!("runs must be an array, got {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).expect("tool.driver");
        let rules = match driver.get("rules") {
            Some(serde_json::Value::Seq(r)) => r,
            other => panic!("rules must be an array, got {other:?}"),
        };
        assert_eq!(rules.len(), catalog().len());
        let results = match runs[0].get("results") {
            Some(serde_json::Value::Seq(r)) => r,
            other => panic!("results must be an array, got {other:?}"),
        };
        assert_eq!(results.len(), 1);
        let loc = &results[0].get("locations").and_then(|l| match l {
            serde_json::Value::Seq(s) => s.first(),
            _ => None,
        });
        let line = loc
            .and_then(|l| l.get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"));
        assert!(matches!(line, Some(serde_json::Value::U64(7))), "{line:?}");
    }

    #[test]
    fn sarif_escapes_quotes_and_backslashes() {
        let fs = vec![finding("R1", "a.rs", "let s = \"x\\\\y\";")];
        let doc = to_sarif(&fs);
        assert!(serde_json::value_from_str(&doc).is_ok(), "escaping broke JSON:\n{doc}");
    }

    #[test]
    fn baseline_roundtrip_and_partition() {
        let old = vec![finding("R1", "a.rs", "old line")];
        let base = Baseline::capture(&old);
        let parsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(parsed.fingerprints, base.fingerprints);
        let now = vec![finding("R1", "a.rs", "old line"), finding("R2", "b.rs", "new line")];
        let (fresh, suppressed) = parsed.partition(&now);
        assert_eq!(suppressed, 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "R2");
    }

    #[test]
    fn catalog_ids_are_unique_and_cover_r1_to_r11() {
        let ids: Vec<&str> = catalog().iter().map(|r| r.id).collect();
        for n in 1..=11 {
            assert!(ids.contains(&format!("R{n}").as_str()), "missing R{n}");
        }
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
