//! Approximate workspace call graph over the parsed items.
//!
//! Resolution order per call site: `self.method()` via the enclosing
//! impl type, `self.field.method()` via the struct's declared field type
//! (wrappers peeled, aliases expanded, `dyn Trait` fanned out to every
//! `impl Trait for X`), `Type::method()` and `ident.method()` via exact
//! qualified lookup. A receiver that resolves to a *foreign* type
//! (vendor/std — nothing parsed under that name) produces no edge;
//! a receiver that cannot be resolved at all (chained calls, local
//! `let` bindings) falls back to *every* method with that name — the
//! graph over-approximates rather than misses a panic. Test code is
//! never a target.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::SourceFile;
use crate::parse::{self, core_type, FnDecl, StructDecl};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method()`
    SelfVal,
    /// `self.<field>.method()`
    SelfField(String),
    /// `<ident>.method()` — a parameter or local binding
    Ident(String),
    /// `<Seg>::method()` — type- or module-qualified path
    Path(String),
    /// `expr).method()`, `x.0.method()`, `a.b.c.method()` — unresolvable
    Chained,
    /// bare `func()`
    None,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name in the file's scrubbed text.
    pub offset: usize,
    /// The callee name as written.
    pub name: String,
    pub recv: Receiver,
    /// Resolved callee indices into [`CallGraph::fns`].
    pub targets: Vec<usize>,
}

/// The workspace symbol table + call graph.
pub struct CallGraph {
    pub fns: Vec<FnDecl>,
    pub structs: BTreeMap<String, StructDecl>,
    pub aliases: BTreeMap<String, String>,
    /// trait name → implementing type names.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    /// Per function (same index as `fns`): its call sites.
    pub sites: Vec<Vec<CallSite>>,
    by_qualified: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Type names the workspace defines something for.
    known_types: BTreeSet<String>,
}

/// BFS result: reachable fn index → the parent edge it was discovered
/// through (`None` for an entry point).
pub struct Reachability {
    pub parent: BTreeMap<usize, Option<usize>>,
}

impl Reachability {
    pub fn contains(&self, idx: usize) -> bool {
        self.parent.contains_key(&idx)
    }
}

const KEYWORDS: [&str; 24] = [
    "if", "else", "match", "while", "for", "loop", "return", "in", "as", "move", "where", "let",
    "fn", "impl", "use", "pub", "mod", "break", "continue", "dyn", "ref", "mut", "unsafe", "await",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the identifier ending just before `end` (exclusive); returns
/// `(start, ident)` or `None` when the preceding byte is not ident-like.
fn ident_before(s: &str, end: usize) -> Option<(usize, &str)> {
    let b = s.as_bytes();
    if end == 0 || !is_ident(b[end - 1]) {
        return None;
    }
    let mut st = end;
    while st > 0 && is_ident(b[st - 1]) {
        st -= 1;
    }
    Some((st, &s[st..end]))
}

fn skip_ws_back(s: &str, mut i: usize) -> usize {
    let b = s.as_bytes();
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    i
}

impl CallGraph {
    /// Parses every file and links the graph. `files[i]` is addressed by
    /// `FnDecl::file == i`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut fns = Vec::new();
        let mut structs = BTreeMap::new();
        let mut aliases = BTreeMap::new();
        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (idx, file) in files.iter().enumerate() {
            let items = parse::parse_items(file, idx);
            fns.extend(items.fns);
            for st in items.structs {
                structs.entry(st.name.clone()).or_insert(st);
            }
            for al in items.aliases {
                aliases.entry(al.name.clone()).or_insert(al.raw_type);
            }
            for (tr, ty) in items.trait_impls {
                trait_impls.entry(tr).or_default().push(ty);
            }
        }

        let mut by_qualified: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut known_types: BTreeSet<String> = structs.keys().cloned().collect();
        known_types.extend(trait_impls.keys().cloned());
        for (i, f) in fns.iter().enumerate() {
            by_qualified.entry(f.qualified()).or_default().push(i);
            match &f.self_type {
                Some(t) => {
                    known_types.insert(t.clone());
                    if f.has_self {
                        methods_by_name.entry(f.name.clone()).or_default().push(i);
                    }
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(i),
            }
        }

        let mut graph = CallGraph {
            fns,
            structs,
            aliases,
            trait_impls,
            sites: Vec::new(),
            by_qualified,
            methods_by_name,
            free_by_name,
            known_types,
        };
        graph.sites = (0..graph.fns.len()).map(|i| graph.extract_sites(files, i)).collect();
        graph
    }

    /// Expands type aliases and peels wrappers until a core type name is
    /// stable; returns the name and whether a lock wrapper was crossed.
    pub fn resolve_core(&self, name: &str) -> (String, bool) {
        let mut cur = name.to_string();
        let mut locked = false;
        for _ in 0..8 {
            let Some(raw) = self.aliases.get(&cur) else { break };
            let (next, lock) = core_type(raw);
            locked |= lock;
            if next == cur || next.is_empty() {
                break;
            }
            cur = next;
        }
        (cur, locked)
    }

    /// All fns named `Type::name`, fanning `Type` out to its
    /// implementations when it is a trait.
    pub fn lookup_method(&self, ty: &str, name: &str) -> Vec<usize> {
        let mut out: Vec<usize> =
            self.by_qualified.get(&format!("{ty}::{name}")).cloned().unwrap_or_default();
        if let Some(impls) = self.trait_impls.get(ty) {
            for x in impls {
                if let Some(v) = self.by_qualified.get(&format!("{x}::{name}")) {
                    out.extend(v.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn resolve_targets(&self, caller: &FnDecl, recv: &Receiver, name: &str) -> Vec<usize> {
        let fallback = |g: &CallGraph| g.methods_by_name.get(name).cloned().unwrap_or_default();
        let via_type = |g: &CallGraph, ty: &str| -> Vec<usize> {
            let (core, _) = g.resolve_core(ty);
            let hits = g.lookup_method(&core, name);
            if !hits.is_empty() || g.known_types.contains(&core) {
                hits // resolved — trust it, even when the method is absent
            } else {
                Vec::new() // foreign type (vendor/std): no local edge
            }
        };
        let mut targets = match recv {
            Receiver::None => self.free_by_name.get(name).cloned().unwrap_or_default(),
            Receiver::Path(seg) => {
                let seg = if seg == "Self" {
                    caller.self_type.clone().unwrap_or_default()
                } else {
                    seg.clone()
                };
                if seg.as_bytes().first().is_some_and(|b| b.is_ascii_uppercase()) {
                    let (core, _) = self.resolve_core(&seg);
                    self.lookup_method(&core, name)
                } else {
                    // module-qualified free call
                    self.free_by_name.get(name).cloned().unwrap_or_default()
                }
            }
            Receiver::SelfVal => match &caller.self_type {
                Some(t) => {
                    let hits = self.lookup_method(t, name);
                    if hits.is_empty() {
                        fallback(self) // trait default method on self
                    } else {
                        hits
                    }
                }
                None => fallback(self),
            },
            Receiver::SelfField(field) => {
                let field_ty = caller
                    .self_type
                    .as_ref()
                    .and_then(|t| self.structs.get(t))
                    .and_then(|st| st.fields.iter().find(|f| f.name == *field))
                    .map(|f| f.core_type.clone());
                match field_ty {
                    Some(ty) => via_type(self, &ty),
                    None => fallback(self),
                }
            }
            Receiver::Ident(id) => {
                match caller.params.iter().find(|(n, _, _)| n == id).map(|(_, t, _)| t.clone()) {
                    Some(ty) if !ty.is_empty() => via_type(self, &ty),
                    _ => fallback(self), // local binding — type unknown
                }
            }
            Receiver::Chained => fallback(self),
        };
        targets.retain(|&t| !self.fns[t].is_test);
        targets
    }

    /// Extracts and resolves the call sites in one function's body.
    fn extract_sites(&self, files: &[SourceFile], fn_idx: usize) -> Vec<CallSite> {
        let f = &self.fns[fn_idx];
        let Some((open, close)) = f.body else { return Vec::new() };
        let s = &files[f.file].scrubbed;
        let b = s.as_bytes();
        let mut out = Vec::new();
        for i in open + 1..close {
            if b[i] != b'(' {
                continue;
            }
            let e = skip_ws_back(s, i);
            let Some((st, name)) = ident_before(s, e) else { continue };
            if st > 0 && b[st - 1] == b'!' {
                continue; // macro invocation — token rules own these
            }
            if name.bytes().all(|c| c.is_ascii_digit()) || KEYWORDS.contains(&name) {
                continue;
            }
            let p = skip_ws_back(s, st);
            let recv = if p >= 2 && &s[p - 2..p] == "::" {
                match ident_before(s, skip_ws_back(s, p - 2)) {
                    Some((_, seg)) => Receiver::Path(seg.to_string()),
                    None => continue, // turbofish / qualified-path — foreign
                }
            } else if p >= 1 && b[p - 1] == b'.' {
                let q = skip_ws_back(s, p - 1);
                match ident_before(s, q) {
                    Some((rst, recv_id)) if !recv_id.bytes().all(|c| c.is_ascii_digit()) => {
                        let rp = skip_ws_back(s, rst);
                        if rp >= 1 && b[rp - 1] == b'.' {
                            let rq = skip_ws_back(s, rp - 1);
                            match ident_before(s, rq) {
                                Some((ost, "self")) if ost == 0 || b[ost - 1] != b'.' => {
                                    Receiver::SelfField(recv_id.to_string())
                                }
                                _ => Receiver::Chained,
                            }
                        } else if recv_id == "self" {
                            Receiver::SelfVal
                        } else {
                            Receiver::Ident(recv_id.to_string())
                        }
                    }
                    _ => Receiver::Chained,
                }
            } else {
                Receiver::None
            };
            let targets = self.resolve_targets(f, &recv, name);
            out.push(CallSite { offset: st, name: name.to_string(), recv, targets });
        }
        out
    }

    /// Fn indices matching an entry spec (`Type::name` or bare `name`),
    /// test code excluded.
    pub fn entry_indices(&self, spec: &str) -> Vec<usize> {
        let hits = if spec.contains("::") {
            self.by_qualified.get(spec).cloned().unwrap_or_default()
        } else {
            let mut v = self.free_by_name.get(spec).cloned().unwrap_or_default();
            v.extend(self.methods_by_name.get(spec).cloned().unwrap_or_default());
            v
        };
        hits.into_iter().filter(|&i| !self.fns[i].is_test).collect()
    }

    /// BFS over call edges from the entry specs, recording discovery
    /// parents for diagnostics.
    pub fn reachable_from(&self, entries: &[String]) -> Reachability {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for spec in entries {
            for idx in self.entry_indices(spec) {
                parent.entry(idx).or_insert(None);
                queue.push_back(idx);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for site in &self.sites[cur] {
                for &t in &site.targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(Some(cur));
                        queue.push_back(t);
                    }
                }
            }
        }
        Reachability { parent }
    }

    /// Human-readable discovery chain: `Entry → A::b → C::d`.
    pub fn chain(&self, reach: &Reachability, idx: usize) -> String {
        let mut names = vec![self.fns[idx].qualified()];
        let mut cur = idx;
        for _ in 0..32 {
            match reach.parent.get(&cur) {
                Some(Some(p)) => {
                    names.push(self.fns[*p].qualified());
                    cur = *p;
                }
                _ => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[&str]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| SourceFile::parse(&format!("f{i}.rs"), s, false))
            .collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn reachable_names(g: &CallGraph, entries: &[&str]) -> Vec<String> {
        let specs: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let r = g.reachable_from(&specs);
        r.parent.keys().map(|&i| g.fns[i].qualified()).collect()
    }

    #[test]
    fn transitive_reachability_two_calls_deep() {
        let (_, g) = graph(&[
            "struct Sim { rig: Rig }\nimpl Sim {\n  fn step(&mut self) { self.rig.advance(); }\n}\n",
            "pub struct Rig;\nimpl Rig {\n  pub fn advance(&mut self) { deep_helper(); }\n}\nfn deep_helper() { }\nfn unrelated() { }\n",
        ]);
        let names = reachable_names(&g, &["Sim::step"]);
        assert_eq!(names, vec!["Sim::step", "Rig::advance", "deep_helper"]);
    }

    #[test]
    fn cfg_test_fns_are_not_targets() {
        let (_, g) = graph(&[
            "fn live() { helper(); }\n#[cfg(test)]\nmod t {\n  fn helper() { panic!(\"x\") }\n}\nfn helper() { }\n",
        ]);
        let r = g.reachable_from(&["live".to_string()]);
        let hit: Vec<_> =
            r.parent.keys().map(|&i| (g.fns[i].qualified(), g.fns[i].is_test)).collect();
        assert_eq!(hit.len(), 2);
        assert!(hit.iter().all(|(_, is_test)| !is_test));
    }

    #[test]
    fn foreign_receiver_types_produce_no_edges() {
        let (_, g) = graph(&[
            "struct S { rng: SmallRng }\nimpl S {\n  fn roll(&mut self) { self.rng.gen(); }\n}\nstruct T;\nimpl T {\n  fn gen(&self) { }\n}\n",
        ]);
        let names = reachable_names(&g, &["S::roll"]);
        assert_eq!(names, vec!["S::roll"], "SmallRng is foreign; T::gen must not link");
    }

    #[test]
    fn unresolved_receiver_falls_back_to_name_match() {
        let (_, g) = graph(&[
            "fn run() { make().go(); }\nstruct W;\nimpl W {\n  fn go(&self) { }\n}\nfn make() -> W { W }\n",
        ]);
        let names = reachable_names(&g, &["run"]);
        assert!(
            names.contains(&"W::go".to_string()),
            "chained receiver over-approximates: {names:?}"
        );
    }

    #[test]
    fn dyn_trait_fields_fan_out_to_impls() {
        let (_, g) = graph(&[
            "struct Host { policy: Box<dyn Policy> }\nimpl Host {\n  fn tick(&self) { self.policy.decide(); }\n}\n",
            "pub trait Policy {\n  fn decide(&self);\n}\nstruct Strict;\nimpl Policy for Strict {\n  fn decide(&self) { inner(); }\n}\nfn inner() { }\n",
        ]);
        let names = reachable_names(&g, &["Host::tick"]);
        assert!(names.contains(&"Strict::decide".to_string()), "{names:?}");
        assert!(names.contains(&"inner".to_string()), "{names:?}");
    }

    #[test]
    fn alias_expansion_reaches_inner_type() {
        let (_, g) = graph(&[
            "type Shared = Arc<Mutex<Det>>;\nstruct App { det: Shared }\nimpl App {\n  fn poll(&self) { self.det.assess(); }\n}\nstruct Det;\nimpl Det {\n  fn assess(&self) { }\n}\n",
        ]);
        // The field core type is the alias name; resolve_core expands it.
        assert_eq!(g.resolve_core("Shared"), ("Det".to_string(), true));
        let names = reachable_names(&g, &["App::poll"]);
        assert!(names.contains(&"Det::assess".to_string()), "{names:?}");
    }

    #[test]
    fn param_typed_receivers_resolve_exactly() {
        let (_, g) = graph(&[
            "fn drive(rig: &mut Rig) { rig.fire(); }\nstruct Rig;\nimpl Rig {\n  fn fire(&mut self) { }\n}\nstruct Other;\nimpl Other {\n  fn fire(&mut self) { }\n}\n",
        ]);
        let names = reachable_names(&g, &["drive"]);
        assert!(names.contains(&"Rig::fire".to_string()));
        assert!(!names.contains(&"Other::fire".to_string()), "param type is known: {names:?}");
    }

    #[test]
    fn path_calls_and_self_calls_resolve() {
        let (_, g) = graph(&[
            "struct A;\nimpl A {\n  fn new() -> A { A }\n  fn run(&self) { self.helper(); A::new(); Self::stat(); }\n  fn helper(&self) { }\n  fn stat() { }\n}\n",
        ]);
        let names = reachable_names(&g, &["A::run"]);
        // Declaration order: fn indices, not alphabetical.
        assert_eq!(names, vec!["A::new", "A::run", "A::helper", "A::stat"]);
    }

    #[test]
    fn chain_renders_discovery_path() {
        let (_, g) = graph(&["fn a() { b(); }\nfn b() { c(); }\nfn c() { }\n"]);
        let r = g.reachable_from(&["a".to_string()]);
        let c_idx = (0..g.fns.len()).find(|&i| g.fns[i].name == "c").unwrap();
        assert_eq!(g.chain(&r, c_idx), "a → b → c");
    }
}
