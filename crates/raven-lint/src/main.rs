//! `cargo run -p raven-lint` — audits the workspace against
//! `raven-lint.toml` and exits nonzero on any unallowlisted finding.
//!
//! Flags:
//! * `--format text|json|sarif` — report format (`--json` is shorthand
//!   for `--format json`; SARIF is the 2.1.0 document CI uploads).
//! * `--rule <id>` — keep only this rule's findings (repeatable; an
//!   unknown id is a hard error, not an empty filter).
//! * `--baseline <file>` — suppress findings whose fingerprint the
//!   baseline already records; only *new* findings fail the run.
//! * `--update-baseline` — rewrite the `--baseline` file from the
//!   current findings and exit 0.
//! * `--list-rules` — print the rule catalog and exit.
//! * `--root <dir>` — override workspace-root discovery (the nearest
//!   ancestor containing `raven-lint.toml`).

#![forbid(unsafe_code)]

use raven_lint::sarif::{self, Baseline};
use raven_lint::{run, Config, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root_override: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut rule_filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage(&format!(
                        "unknown format `{other}` (expected text, json, or sarif)"
                    ))
                }
                None => return usage("--format needs a value (text, json, or sarif)"),
            },
            "--rule" => match args.next() {
                Some(id) => rule_filter.push(id),
                None => return usage("--rule needs a rule id (e.g. R8)"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a file path"),
            },
            "--update-baseline" => update_baseline = true,
            "--list-rules" => return list_rules(),
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    for id in &rule_filter {
        if sarif::rule_info(id).is_none() {
            return usage(&format!(
                "unknown rule `{id}`; run raven-lint --list-rules for the catalog"
            ));
        }
    }
    if update_baseline && baseline_path.is_none() {
        return usage("--update-baseline needs --baseline <file>");
    }

    let root = match root_override.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("raven-lint: no raven-lint.toml found in this directory or any ancestor");
            return ExitCode::from(2);
        }
    };
    let config_text = match std::fs::read_to_string(root.join("raven-lint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("raven-lint: cannot read raven-lint.toml: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("raven-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("raven-lint: audit failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings: Vec<Finding> = report.findings;
    if !rule_filter.is_empty() {
        findings.retain(|f| rule_filter.iter().any(|r| r == &f.rule));
    }

    if update_baseline {
        let path = baseline_path.expect("checked above");
        let base = Baseline::capture(&findings);
        if let Err(e) = std::fs::write(&path, base.render()) {
            eprintln!("raven-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "raven-lint: baseline {} updated with {} fingerprint(s)",
            path.display(),
            base.fingerprints.len()
        );
        return ExitCode::SUCCESS;
    }

    // With a baseline, only findings it does not record are failures.
    let mut suppressed = 0usize;
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("raven-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("raven-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let (fresh, known) = base.partition(&findings);
        suppressed = known;
        findings = fresh.into_iter().cloned().collect();
    }

    match format {
        Format::Json => match serde_json::to_string_pretty(&findings) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("raven-lint: serialization failed: {e}");
                return ExitCode::from(2);
            }
        },
        Format::Sarif => print!("{}", sarif::to_sarif(&findings)),
        Format::Text => {
            for f in &findings {
                println!("{}:{}: [{} {}] {}", f.path, f.line, f.rule, f.name, f.snippet);
                println!("    hint: {}", f.hint);
            }
        }
    }
    eprintln!(
        "raven-lint: {} file(s) scanned, {} finding(s), {} allowlisted exception(s){}",
        report.files_scanned,
        findings.len(),
        report.allowed,
        if baseline_path.is_some() {
            format!(", {suppressed} baseline-suppressed")
        } else {
            String::new()
        }
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_rules() -> ExitCode {
    println!("{:<7} {:<24} {:<60} scope", "id", "name", "summary");
    for r in sarif::catalog() {
        println!("{:<7} {:<24} {:<60} {}", r.id, r.name, r.summary, r.scope);
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "usage: raven-lint [--format text|json|sarif] [--json] [--rule <id>]... \
                     [--baseline <file>] [--update-baseline] [--list-rules] \
                     [--root <workspace-dir>]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("raven-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory holding `raven-lint.toml`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("raven-lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
