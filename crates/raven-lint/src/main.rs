//! `cargo run -p raven-lint` — audits the workspace against
//! `raven-lint.toml` and exits nonzero on any unallowlisted finding.
//!
//! Flags: `--json` emits the findings as a JSON array; `--root <dir>`
//! overrides workspace-root discovery (the nearest ancestor containing
//! `raven-lint.toml`).

#![forbid(unsafe_code)]

use raven_lint::{run, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: raven-lint [--json] [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let root = match root_override.or_else(discover_root) {
        Some(r) => r,
        None => {
            eprintln!("raven-lint: no raven-lint.toml found in this directory or any ancestor");
            return ExitCode::from(2);
        }
    };
    let config_text = match std::fs::read_to_string(root.join("raven-lint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("raven-lint: cannot read raven-lint.toml: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("raven-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("raven-lint: audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        match serde_json::to_string_pretty(&report.findings) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("raven-lint: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &report.findings {
            println!("{}:{}: [{} {}] {}", f.path, f.line, f.rule, f.name, f.snippet);
            println!("    hint: {}", f.hint);
        }
        eprintln!(
            "raven-lint: {} file(s) scanned, {} finding(s), {} allowlisted exception(s)",
            report.files_scanned,
            report.findings.len(),
            report.allowed
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("raven-lint: {msg}");
    eprintln!("usage: raven-lint [--json] [--root <workspace-dir>]");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory holding `raven-lint.toml`.
fn discover_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("raven-lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
