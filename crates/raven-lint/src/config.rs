//! `raven-lint.toml` — rule parameters and the audited allowlist.
//!
//! The workspace builds offline with vendored stubs only, so this module
//! hand-parses the small TOML subset the config actually uses: `[a.b]`
//! sections, `[[a.b]]` array-of-tables, string values, string arrays
//! (single- or multi-line), and `#` comments. Anything fancier is a parse
//! error — the config is meant to stay boring.

use std::fmt;

/// One intentional exception. Every entry must carry a `reason`; entries
/// that never match a finding are reported as stale (rule `CONFIG`), so
/// the allowlist cannot silently outlive the code it excuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id: `R1`..`R7`.
    pub rule: String,
    /// Workspace-relative file path, or a directory prefix ending in `/`.
    pub path: String,
    /// Optional substring the offending line must contain, to scope the
    /// exception to specific call sites instead of a whole file.
    pub contains: Option<String>,
    /// One-line justification. Mandatory and non-empty.
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry cover `path` (and `line_text`, when scoped)?
    pub fn covers(&self, path: &str, line_text: &str) -> bool {
        let path_ok = if self.path.ends_with('/') {
            path.starts_with(self.path.as_str())
        } else {
            path == self.path
        };
        path_ok && self.contains.as_deref().is_none_or(|needle| line_text.contains(needle))
    }
}

/// A safety-critical enum R4 watches: `match`es mentioning its variants
/// must not use a wildcard `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchedEnum {
    pub name: String,
    pub variants: Vec<String>,
}

/// An R5 scoped doc: a second human-facing document that must agree with
/// the registry for every name under `prefix` (both directions). Lets a
/// subsystem spec — e.g. `docs/FORENSICS.md` for `ledger.*` — carry its
/// own kind/metric tables without duplicating the whole observability
/// catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopedDoc {
    /// Workspace-relative markdown path.
    pub doc: String,
    /// Dotted-name prefix this doc owns, e.g. `ledger.`.
    pub prefix: String,
}

/// One `[[rules.artifact_schema.roots]]` entry: a golden artifact and the
/// struct that serializes it. R11 checks every direct field of the struct
/// appears as a key in the JSON (the keys→fields direction is global).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRoot {
    /// Workspace-relative JSON path.
    pub json: String,
    /// The `#[derive(Serialize)]` struct written to that file.
    pub strukt: String,
}

/// Parsed `raven-lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (workspace-relative) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes skipped entirely (fixtures, vendored stubs).
    pub exclude: Vec<String>,
    /// R1: forbidden wall-clock tokens.
    pub wall_clock_tokens: Vec<String>,
    /// R2: crates whose outputs are serialized or merged.
    pub unordered_crates: Vec<String>,
    /// R2: forbidden unordered-collection tokens.
    pub unordered_tokens: Vec<String>,
    /// R3/R8: call-graph entry points (`Type::method` or free-fn names).
    pub hot_path_entry_points: Vec<String>,
    /// R3: forbidden panic tokens in the reachable set.
    pub panic_tokens: Vec<String>,
    /// R8: forbidden allocation tokens in the reachable set.
    pub alloc_tokens: Vec<String>,
    /// R9: seed-deriving functions whose stream argument is audited.
    pub stream_fns: Vec<String>,
    /// R11: glob patterns (`dir/prefix*.json`) naming the golden
    /// artifacts whose keys are checked against serialized-struct fields.
    pub artifact_globs: Vec<String>,
    /// R11: JSON keys exempt from the keys→fields direction (data-driven
    /// map keys that are not struct fields).
    pub artifact_ignore_keys: Vec<String>,
    /// R11: artifact → root-struct pairs for the fields→keys direction.
    pub artifact_roots: Vec<ArtifactRoot>,
    /// R4: enums whose matches must be exhaustive.
    pub watched_enums: Vec<WatchedEnum>,
    /// R5: the machine-readable registry source (`simbus::obs`).
    pub registry_path: String,
    /// R5: the human-facing doc the registry must agree with.
    pub doc_path: String,
    /// R5: additional prefix-scoped docs (`[[rules.doc_drift.scoped]]`).
    pub scoped_docs: Vec<ScopedDoc>,
    /// R6: files allowed to contain `unsafe` (with `// SAFETY:`).
    pub unsafe_files: Vec<String>,
    /// R7: crates where float `==`/`!=` against literals is forbidden
    /// (the merged-artifact crates, same stakes as R2).
    pub float_cmp_crates: Vec<String>,
    /// The audited exception list.
    pub allows: Vec<AllowEntry>,
}

/// Config-file problem, reported with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "raven-lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError { line, message: message.into() }
}

/// What a `key = value` line parsed into.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Arr(Vec<String>),
}

impl Config {
    /// Parses and validates the config text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        // Which array-of-tables entry is open, if any.
        enum Open {
            None,
            Allow,
            Enum,
            ScopedDoc,
            ArtifactRoot,
        }
        let mut section = String::new();
        let mut open = Open::None;

        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = name.trim().to_string();
                open = match section.as_str() {
                    "allow" => {
                        cfg.allows.push(AllowEntry {
                            rule: String::new(),
                            path: String::new(),
                            contains: None,
                            reason: String::new(),
                        });
                        Open::Allow
                    }
                    "rules.exhaustive_safety_match.enums" => {
                        cfg.watched_enums
                            .push(WatchedEnum { name: String::new(), variants: Vec::new() });
                        Open::Enum
                    }
                    "rules.doc_drift.scoped" => {
                        cfg.scoped_docs
                            .push(ScopedDoc { doc: String::new(), prefix: String::new() });
                        Open::ScopedDoc
                    }
                    "rules.artifact_schema.roots" => {
                        cfg.artifact_roots
                            .push(ArtifactRoot { json: String::new(), strukt: String::new() });
                        Open::ArtifactRoot
                    }
                    other => return Err(err(lineno, format!("unknown table array [[{other}]]"))),
                };
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                open = Open::None;
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = line[..eq].trim().to_string();
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming lines until brackets balance.
            while value_text.starts_with('[') && !array_closed(&value_text) {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, "unterminated array"));
                };
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
            let value = parse_value(&value_text, lineno)?;
            match (&open, section.as_str(), key.as_str()) {
                (Open::None, "scan", "roots") => cfg.roots = value.arr(lineno)?,
                (Open::None, "scan", "exclude") => cfg.exclude = value.arr(lineno)?,
                (Open::None, "rules.no_wall_clock", "tokens") => {
                    cfg.wall_clock_tokens = value.arr(lineno)?
                }
                (Open::None, "rules.no_unordered_iteration", "crates") => {
                    cfg.unordered_crates = value.arr(lineno)?
                }
                (Open::None, "rules.no_unordered_iteration", "tokens") => {
                    cfg.unordered_tokens = value.arr(lineno)?
                }
                (Open::None, "rules.hot_path", "entry_points") => {
                    cfg.hot_path_entry_points = value.arr(lineno)?
                }
                (Open::None, "rules.no_panic_in_hot_path", "tokens") => {
                    cfg.panic_tokens = value.arr(lineno)?
                }
                (Open::None, "rules.no_alloc_in_hot_path", "tokens") => {
                    cfg.alloc_tokens = value.arr(lineno)?
                }
                (Open::None, "rules.rng_stream", "fns") => cfg.stream_fns = value.arr(lineno)?,
                (Open::None, "rules.artifact_schema", "globs") => {
                    cfg.artifact_globs = value.arr(lineno)?
                }
                (Open::None, "rules.artifact_schema", "ignore_keys") => {
                    cfg.artifact_ignore_keys = value.arr(lineno)?
                }
                (Open::None, "rules.doc_drift", "registry") => {
                    cfg.registry_path = value.str(lineno)?
                }
                (Open::None, "rules.doc_drift", "doc") => cfg.doc_path = value.str(lineno)?,
                (Open::None, "rules.unsafe_audit", "files") => {
                    cfg.unsafe_files = value.arr(lineno)?
                }
                (Open::None, "rules.float_cmp", "crates") => {
                    cfg.float_cmp_crates = value.arr(lineno)?
                }
                (Open::Enum, _, "name") => {
                    cfg.watched_enums.last_mut().expect("open enum").name = value.str(lineno)?
                }
                (Open::Enum, _, "variants") => {
                    cfg.watched_enums.last_mut().expect("open enum").variants = value.arr(lineno)?
                }
                (Open::ScopedDoc, _, "doc") => {
                    cfg.scoped_docs.last_mut().expect("open scoped doc").doc = value.str(lineno)?
                }
                (Open::ScopedDoc, _, "prefix") => {
                    cfg.scoped_docs.last_mut().expect("open scoped doc").prefix =
                        value.str(lineno)?
                }
                (Open::ArtifactRoot, _, "json") => {
                    cfg.artifact_roots.last_mut().expect("open artifact root").json =
                        value.str(lineno)?
                }
                (Open::ArtifactRoot, _, "struct") => {
                    cfg.artifact_roots.last_mut().expect("open artifact root").strukt =
                        value.str(lineno)?
                }
                (Open::Allow, _, "rule") => {
                    cfg.allows.last_mut().expect("open allow").rule = value.str(lineno)?
                }
                (Open::Allow, _, "path") => {
                    cfg.allows.last_mut().expect("open allow").path = value.str(lineno)?
                }
                (Open::Allow, _, "contains") => {
                    cfg.allows.last_mut().expect("open allow").contains = Some(value.str(lineno)?)
                }
                (Open::Allow, _, "reason") => {
                    cfg.allows.last_mut().expect("open allow").reason = value.str(lineno)?
                }
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in section `[{section}]`"),
                    ))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        const RULES: [&str; 11] =
            ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11"];
        for (i, a) in self.allows.iter().enumerate() {
            let at = |msg: String| err(0, format!("[[allow]] entry #{}: {msg}", i + 1));
            if !RULES.contains(&a.rule.as_str()) {
                return Err(at(format!("rule must be one of R1..R11, got `{}`", a.rule)));
            }
            if a.path.is_empty() {
                return Err(at("missing `path`".into()));
            }
            if a.reason.trim().is_empty() {
                return Err(at(format!(
                    "missing `reason` for path `{}` — every exception must be justified",
                    a.path
                )));
            }
        }
        for e in &self.watched_enums {
            if e.name.is_empty() || e.variants.is_empty() {
                return Err(err(0, "watched enum needs `name` and non-empty `variants`"));
            }
        }
        for s in &self.scoped_docs {
            if s.doc.is_empty() || s.prefix.is_empty() {
                return Err(err(0, "[[rules.doc_drift.scoped]] needs `doc` and `prefix`"));
            }
        }
        for r in &self.artifact_roots {
            if r.json.is_empty() || r.strukt.is_empty() {
                return Err(err(0, "[[rules.artifact_schema.roots]] needs `json` and `struct`"));
            }
        }
        Ok(())
    }
}

impl Value {
    fn str(self, line: usize) -> Result<String, ConfigError> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Arr(_) => Err(err(line, "expected a string, got an array")),
        }
    }

    fn arr(self, line: usize) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::Arr(a) => Ok(a),
            Value::Str(_) => Err(err(line, "expected an array, got a string")),
        }
    }
}

/// Drops a `#` comment unless the `#` sits inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Are all `[`s of a (possibly partial) array value closed, ignoring
/// brackets inside quoted strings?
fn array_closed(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in text.bytes() {
        match c {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str, line: usize) -> Result<Value, ConfigError> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            let (item, tail) = parse_string(rest, line)?;
            items.push(item);
            rest = tail.trim_start();
        }
        return Ok(Value::Arr(items));
    }
    let (s, tail) = parse_string(text, line)?;
    if !tail.trim().is_empty() {
        return Err(err(line, format!("trailing data after string: `{tail}`")));
    }
    Ok(Value::Str(s))
}

/// Parses one leading `"..."`, returning (content, remainder).
fn parse_string(text: &str, line: usize) -> Result<(String, &str), ConfigError> {
    let rest = text
        .strip_prefix('"')
        .ok_or_else(|| err(line, format!("expected a quoted string at `{text}`")))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return Err(err(line, format!("unsupported escape `\\{other}`")))
                }
                None => break,
            },
            other => out.push(other),
        }
    }
    Err(err(line, "unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[scan]
roots = ["crates", "src"]
exclude = [
    "crates/raven-lint/tests/fixtures/",  # the linter's own test corpus
    "vendor/",
]

[rules.no_wall_clock]
tokens = ["Instant::now", "SystemTime"]

[rules.doc_drift]
registry = "crates/simbus/src/obs.rs"
doc = "docs/OBSERVABILITY.md"

[[rules.doc_drift.scoped]]
doc = "docs/FORENSICS.md"
prefix = "ledger."

[rules.float_cmp]
crates = ["simbus", "raven-core"]

[[rules.exhaustive_safety_match.enums]]
name = "RobotState"
variants = ["Init", "EStop"]

[[allow]]
rule = "R1"
path = "crates/simbus/src/obs.rs"
reason = "profiler is the sanctioned wall-clock surface"

[[allow]]
rule = "R4"
path = "crates/raven-control/src/state_machine.rs"
contains = "(s, _) => s"
reason = "illegal events are ignored by design (paper Fig. 1c)"
"##;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).expect("parse");
        assert_eq!(cfg.roots, vec!["crates", "src"]);
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(cfg.wall_clock_tokens, vec!["Instant::now", "SystemTime"]);
        assert_eq!(cfg.registry_path, "crates/simbus/src/obs.rs");
        assert_eq!(
            cfg.scoped_docs,
            vec![ScopedDoc { doc: "docs/FORENSICS.md".into(), prefix: "ledger.".into() }]
        );
        assert_eq!(cfg.float_cmp_crates, vec!["simbus", "raven-core"]);
        assert_eq!(cfg.watched_enums.len(), 1);
        assert_eq!(cfg.watched_enums[0].variants, vec!["Init", "EStop"]);
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[1].contains.as_deref(), Some("(s, _) => s"));
    }

    #[test]
    fn rejects_missing_reason() {
        let bad = "[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\nreason = \"\"\n";
        let e = Config::parse(bad).unwrap_err();
        assert!(e.message.contains("reason"), "{e}");
    }

    #[test]
    fn rejects_incomplete_scoped_doc() {
        let bad = "[[rules.doc_drift.scoped]]\ndoc = \"docs/FORENSICS.md\"\n";
        let e = Config::parse(bad).unwrap_err();
        assert!(e.message.contains("prefix"), "{e}");
    }

    #[test]
    fn rejects_unknown_rule_and_keys() {
        let bad = "[[allow]]\nrule = \"R12\"\npath = \"x.rs\"\nreason = \"y\"\n";
        assert!(Config::parse(bad).is_err());
        let bad2 = "[scan]\nbogus = \"x\"\n";
        assert!(Config::parse(bad2).is_err());
    }

    #[test]
    fn parses_hot_path_and_artifact_schema_sections() {
        let text = r#"
[rules.hot_path]
entry_points = ["Simulation::step", "Rig::step"]

[rules.no_alloc_in_hot_path]
tokens = ["Box::new(", "format!("]

[rules.rng_stream]
fns = ["stream_rng", "derive_seed"]

[rules.artifact_schema]
globs = ["results/*.json", "tests/fixtures/golden_*.json"]
ignore_keys = ["traceEvents"]

[[rules.artifact_schema.roots]]
json = "results/table4_detection.json"
struct = "Table4Artifact"
"#;
        let cfg = Config::parse(text).expect("parse");
        assert_eq!(cfg.hot_path_entry_points, vec!["Simulation::step", "Rig::step"]);
        assert_eq!(cfg.alloc_tokens, vec!["Box::new(", "format!("]);
        assert_eq!(cfg.stream_fns, vec!["stream_rng", "derive_seed"]);
        assert_eq!(cfg.artifact_globs.len(), 2);
        assert_eq!(cfg.artifact_ignore_keys, vec!["traceEvents"]);
        assert_eq!(
            cfg.artifact_roots,
            vec![ArtifactRoot {
                json: "results/table4_detection.json".into(),
                strukt: "Table4Artifact".into()
            }]
        );
        let bad = "[[rules.artifact_schema.roots]]\njson = \"results/x.json\"\n";
        assert!(Config::parse(bad).is_err());
    }

    #[test]
    fn allow_entry_path_and_contains_matching() {
        let dir = AllowEntry {
            rule: "R1".into(),
            path: "crates/bench/".into(),
            contains: None,
            reason: "r".into(),
        };
        assert!(dir.covers("crates/bench/src/lib.rs", "anything"));
        assert!(!dir.covers("crates/benchx/src/lib.rs", "anything"));
        let scoped = AllowEntry {
            rule: "R4".into(),
            path: "a.rs".into(),
            contains: Some("(s, _)".into()),
            reason: "r".into(),
        };
        assert!(scoped.covers("a.rs", "  (s, _) => s,"));
        assert!(!scoped.covers("a.rs", "  (_, Fault(r)) => x,"));
    }
}
