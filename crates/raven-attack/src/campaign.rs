//! Fault-injection campaign configuration — "an attack injection engine
//! which can create attack scenarios targeting different layers of robot
//! control structure" (paper §IV.A), "programmed to … inject malicious
//! inputs/commands with different values and activation periods … at
//! different times during a running trajectory" (§IV.A.2).
//!
//! These are pure configuration types; `raven-core::experiments` executes
//! them against the full simulation.

use serde::{Deserialize, Serialize};
use simbus::obs::streams;

/// Which paper scenario a campaign runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario A: injection of unintended *user inputs* (ITP MITM) —
    /// `magnitude` meters of extra displacement per 1 ms packet.
    UserInput {
        /// Extra displacement per packet (meters).
        magnitude: f64,
    },
    /// Scenario B: injection of unintended *motor torque commands* (USB
    /// write corruption after the safety checks) — `dac_delta` counts added
    /// to one positioning DAC word.
    TorqueCommand {
        /// DAC counts added per packet.
        dac_delta: i16,
        /// Target positioning channel (0–2).
        channel: usize,
    },
}

/// One injection experiment: a scenario, an activation period, and timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionSpec {
    /// What to inject.
    pub scenario: Scenario,
    /// Pedal-down packets to let pass before the first corruption.
    pub delay_packets: u64,
    /// Consecutive packets to corrupt (≈ milliseconds) — the paper's
    /// activation-period axis (2–512 ms in Fig. 9).
    pub duration_packets: u64,
}

impl InjectionSpec {
    /// Scenario-B spec with the Fig. 9 axes: injected error value (DAC
    /// counts) and activation period (ms).
    pub fn torque(dac_delta: i16, duration_ms: u64) -> Self {
        InjectionSpec {
            scenario: Scenario::TorqueCommand { dac_delta, channel: 0 },
            delay_packets: 250,
            duration_packets: duration_ms,
        }
    }

    /// Scenario-A spec: injected displacement per packet and activation
    /// period (ms).
    pub fn user_input(magnitude: f64, duration_ms: u64) -> Self {
        InjectionSpec {
            scenario: Scenario::UserInput { magnitude },
            delay_packets: 250,
            duration_packets: duration_ms,
        }
    }
}

/// A full campaign: the cross-product of values × durations × repetitions,
/// as in Fig. 9 ("Each attack scenario with specific distance error and
/// activation period was repeated for at least 20 times").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The specs to run.
    pub specs: Vec<InjectionSpec>,
    /// Repetitions per spec (different seeds).
    pub repetitions: u32,
    /// Root seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// The Fig. 9 scenario-B grid: DAC error values × activation periods.
    pub fn fig9_grid(values: &[i16], durations_ms: &[u64], repetitions: u32, seed: u64) -> Self {
        let mut specs = Vec::new();
        for &v in values {
            for &d in durations_ms {
                specs.push(InjectionSpec::torque(v, d));
            }
        }
        CampaignConfig { specs, repetitions, seed }
    }

    /// Total runs in the campaign.
    pub fn total_runs(&self) -> usize {
        self.specs.len() * self.repetitions as usize
    }

    /// Enumerates every run of the campaign as a flat, deterministic plan:
    /// spec-major, repetition-minor — the same order the original nested
    /// loops executed in. Parallel executors index this plan, so run →
    /// (spec, repetition, seed stream) is fixed regardless of scheduling.
    pub fn plan(&self) -> CampaignPlan {
        let mut runs = Vec::with_capacity(self.total_runs());
        for (spec_idx, spec) in self.specs.iter().enumerate() {
            for repetition in 0..self.repetitions {
                runs.push(RunDescriptor {
                    spec_idx,
                    spec: *spec,
                    repetition,
                    stream: format!("{}{spec_idx}-{repetition}", streams::CAMPAIGN_PREFIX),
                });
            }
        }
        CampaignPlan { runs }
    }
}

/// One planned run: which spec, which repetition, and the seed stream
/// label to derive its RNG seed from (`derive_seed(root, stream)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDescriptor {
    /// Index of the spec in `CampaignConfig::specs`.
    pub spec_idx: usize,
    /// The spec itself (copied for self-containedness).
    pub spec: InjectionSpec,
    /// Repetition index within the spec.
    pub repetition: u32,
    stream: String,
}

impl RunDescriptor {
    /// The seed-stream label for this run.
    pub fn stream(&self) -> &str {
        &self.stream
    }
}

/// The flat, ordered list of runs a campaign executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPlan {
    runs: Vec<RunDescriptor>,
}

impl CampaignPlan {
    /// Number of planned runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates the runs in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, RunDescriptor> {
        self.runs.iter()
    }
}

impl std::ops::Index<usize> for CampaignPlan {
    type Output = RunDescriptor;

    fn index(&self, i: usize) -> &RunDescriptor {
        &self.runs[i]
    }
}

impl<'a> IntoIterator for &'a CampaignPlan {
    type Item = &'a RunDescriptor;
    type IntoIter = std::slice::Iter<'a, RunDescriptor>;

    fn into_iter(self) -> Self::IntoIter {
        self.runs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_grid_is_cross_product() {
        let c = CampaignConfig::fig9_grid(&[100, 1000, 10000], &[2, 16, 64, 256], 20, 1);
        assert_eq!(c.specs.len(), 12);
        assert_eq!(c.total_runs(), 240);
    }

    #[test]
    fn spec_constructors() {
        let s = InjectionSpec::torque(5000, 64);
        assert!(matches!(s.scenario, Scenario::TorqueCommand { dac_delta: 5000, channel: 0 }));
        assert_eq!(s.duration_packets, 64);
        let s = InjectionSpec::user_input(2e-3, 16);
        assert!(matches!(s.scenario, Scenario::UserInput { .. }));
    }

    #[test]
    fn plan_enumerates_spec_major_rep_minor() {
        let c = CampaignConfig::fig9_grid(&[100, 1000], &[2, 16], 3, 1);
        let plan = c.plan();
        assert_eq!(plan.len(), c.total_runs());
        let mut expected = 0usize;
        for (spec_idx, spec) in c.specs.iter().enumerate() {
            for rep in 0..c.repetitions {
                let d = &plan[expected];
                assert_eq!(d.spec_idx, spec_idx);
                assert_eq!(&d.spec, spec);
                assert_eq!(d.repetition, rep);
                assert_eq!(d.stream(), format!("campaign-{spec_idx}-{rep}"));
                expected += 1;
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = CampaignConfig::fig9_grid(&[100], &[2], 5, 42);
        let json = serde_json::to_string(&c).unwrap();
        let back: CampaignConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
