//! Attack side of the DSN'16 reproduction — **for defensive evaluation
//! only**: everything here operates on the in-process simulated robot and
//! exists to exercise and measure the dynamic-model detector, exactly as the
//! paper's own "attack injection engine" does (§IV.A.2).
//!
//! * [`wrappers`] — the malicious `write` wrappers of Fig. 4: the logging
//!   (eavesdropping) wrapper of the Attack-Preparation phase and the
//!   self-triggered injection wrapper of the Deployment phase;
//! * [`analysis`] — the Offline-Analysis phase of Figs. 5–6: per-byte
//!   alphabet profiling, watchdog-bit discovery, state-byte identification,
//!   trigger derivation;
//! * [`malware`] — the three-phase lifecycle coordinator of Fig. 3;
//! * [`variants`] — the Table I attack-variant catalog plus concrete
//!   implementations (ITP MITM for scenario A, PLC state rewrite, encoder
//!   feedback corruption);
//! * [`campaign`] — fault-injection campaign configuration (value ×
//!   activation-period grids for Fig. 9, run counts for Table IV).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod campaign;
pub mod feedback;
pub mod malware;
pub mod variants;
pub mod wrappers;

pub use analysis::{
    byte_profiles, find_state_byte, infer_state_segments, AnalysisError, ByteProfile,
    StateByteHypothesis, StateSegment,
};
pub use campaign::{CampaignConfig, CampaignPlan, InjectionSpec, RunDescriptor, Scenario};
pub use feedback::{
    encoder_activity, motion_gated_attack, shared_motion, summarize_motion, FeedbackLogger,
    GatedInjection, MotionSensor, MotionSummary, SharedMotion,
};
pub use malware::{Malware, MalwarePhase};
pub use variants::{
    catalog, EncoderCorruption, ItpMitm, ObservedImpact, StateNibbleRewrite, TargetLayer,
    VariantSpec,
};
pub use wrappers::{
    capture_log, ActivationWindow, CaptureLog, Corruption, InjectionWrapper, LoggedPacket,
    LoggingWrapper,
};
