//! Malicious `write` wrappers — the reproduction of the paper's Fig. 4.
//!
//! The paper's malware is a shared library that shadows `write(2)` via
//! `LD_PRELOAD`. Two variants are measured in Table II:
//!
//! * the **logging wrapper** (Attack-Preparation phase): "checking the
//!   process name and the file descriptor and sending the UDP packets to the
//!   remote attacker" — here [`LoggingWrapper`], which copies each USB buffer
//!   into a shared capture log and exfiltrates it over a simulated UDP link;
//! * the **injection wrapper** (Deployment phase): "checking for the process
//!   name and file descriptor, checking the packet contents to determine if
//!   the desired robot state is reached, and overwriting the malicious
//!   value" — here [`InjectionWrapper`], which fires only when Byte 0
//!   matches the trigger values (0x0F/0x1F = Pedal Down) and then corrupts
//!   payload bytes for a configured activation period.
//!
//! These run **research/defensive evaluation only** — they operate purely on
//! the in-process simulated USB channel.

use std::sync::Arc;

use parking_lot::Mutex;
use raven_hw::channel::{WriteAction, WriteContext, WriteInterceptor};
use serde::{Deserialize, Serialize};
use simbus::{SimLink, SimTime};

/// One captured USB write, as the attacker's remote server receives it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedPacket {
    /// Capture time.
    pub time: SimTime,
    /// Write sequence number on the channel.
    pub seq: u64,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

/// Shared capture log (the attacker's collection server).
pub type CaptureLog = Arc<Mutex<Vec<LoggedPacket>>>;

/// Creates an empty capture log.
pub fn capture_log() -> CaptureLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// The eavesdropping wrapper of the Attack-Preparation phase.
#[derive(Debug)]
pub struct LoggingWrapper {
    log: CaptureLog,
    exfil: Option<SimLink<LoggedPacket>>,
    expected_process: &'static str,
    expected_fd: i32,
    captured: u64,
}

impl LoggingWrapper {
    /// Name under which the wrapper installs (for `uninstall`).
    pub const NAME: &'static str = "malicious-logging-wrapper";

    /// Creates a wrapper that records into `log`.
    pub fn new(log: CaptureLog) -> Self {
        LoggingWrapper {
            log,
            exfil: None,
            expected_process: raven_hw::UsbChannel::PROCESS,
            expected_fd: raven_hw::UsbChannel::BOARD_FD,
            captured: 0,
        }
    }

    /// Additionally exfiltrates captures over a simulated UDP link to the
    /// attacker's remote server (paper §III.B.1 step 3).
    pub fn with_exfiltration(mut self, link: SimLink<LoggedPacket>) -> Self {
        self.exfil = Some(link);
        self
    }

    /// Packets captured so far.
    pub fn captured(&self) -> u64 {
        self.captured
    }
}

impl WriteInterceptor for LoggingWrapper {
    fn on_write(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
        // The wrapper shadows write(2) for *every* process; it must act only
        // on the robot's USB traffic (paper: "checking the process name and
        // the file descriptor").
        if ctx.process == self.expected_process && ctx.fd == self.expected_fd {
            let pkt = LoggedPacket { time: ctx.time, seq: ctx.seq, bytes: buf.clone() };
            if let Some(link) = &mut self.exfil {
                link.send(ctx.time, pkt.clone());
            }
            self.log.lock().push(pkt);
            self.captured += 1;
        }
        WriteAction::Forward
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

/// How the injection wrapper corrupts a triggered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Overwrite one raw byte with a fixed value (the paper injects "a
    /// random value (e.g., between 0 and 100) to one of the bytes").
    SetByte {
        /// Byte offset within the packet.
        offset: usize,
        /// Value to write.
        value: u8,
    },
    /// Add a signed delta to one 16-bit little-endian DAC word (channels
    /// 0–7 live at offsets 1..17 of the command packet).
    AddDacWord {
        /// DAC channel 0–7.
        channel: usize,
        /// Signed delta in DAC counts.
        delta: i16,
    },
}

impl Corruption {
    fn apply(&self, buf: &mut [u8]) -> bool {
        match *self {
            Corruption::SetByte { offset, value } => {
                if offset < buf.len() {
                    buf[offset] = value;
                    true
                } else {
                    false
                }
            }
            Corruption::AddDacWord { channel, delta } => {
                let lo = 1 + 2 * channel;
                if lo + 1 < buf.len() {
                    let word = i16::from_le_bytes([buf[lo], buf[lo + 1]]);
                    let corrupted = word.wrapping_add(delta).to_le_bytes();
                    buf[lo] = corrupted[0];
                    buf[lo + 1] = corrupted[1];
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// When, and for how long, the injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationWindow {
    /// Number of triggered packets to skip before the first corruption
    /// (lets experiments fire mid-trajectory).
    pub delay_triggers: u64,
    /// Number of consecutive packets to corrupt once active — the paper's
    /// "activation period" axis of Fig. 9 (one packet per millisecond).
    pub duration_packets: u64,
}

impl ActivationWindow {
    /// Fire immediately and keep firing.
    pub fn immediate_persistent() -> Self {
        ActivationWindow { delay_triggers: 0, duration_packets: u64::MAX }
    }

    /// Fire after `delay` triggered packets, for `duration` packets
    /// (≈ milliseconds).
    pub fn delayed(delay: u64, duration: u64) -> Self {
        ActivationWindow { delay_triggers: delay, duration_packets: duration }
    }
}

/// The self-triggered injection wrapper of the Deployment phase.
#[derive(Debug)]
pub struct InjectionWrapper {
    /// Byte-0 values that identify the target state (0x0F/0x1F by default).
    trigger_values: Vec<u8>,
    corruption: Corruption,
    window: ActivationWindow,
    expected_process: &'static str,
    expected_fd: i32,
    triggers_seen: u64,
    injections: u64,
}

impl InjectionWrapper {
    /// Name under which the wrapper installs.
    pub const NAME: &'static str = "malicious-injection-wrapper";

    /// Creates a wrapper triggering on the paper's Pedal-Down byte values
    /// (0x0F and 0x1F).
    pub fn pedal_down_trigger(corruption: Corruption, window: ActivationWindow) -> Self {
        Self::with_trigger(vec![0x0F, 0x1F], corruption, window)
    }

    /// Creates a wrapper with attacker-derived trigger values (the output of
    /// the offline Analysis phase).
    ///
    /// # Panics
    ///
    /// Panics if `trigger_values` is empty.
    pub fn with_trigger(
        trigger_values: Vec<u8>,
        corruption: Corruption,
        window: ActivationWindow,
    ) -> Self {
        assert!(!trigger_values.is_empty(), "trigger set must be non-empty");
        InjectionWrapper {
            trigger_values,
            corruption,
            window,
            expected_process: raven_hw::UsbChannel::PROCESS,
            expected_fd: raven_hw::UsbChannel::BOARD_FD,
            triggers_seen: 0,
            injections: 0,
        }
    }

    /// Packets that matched the trigger so far.
    pub fn triggers_seen(&self) -> u64 {
        self.triggers_seen
    }

    /// Packets actually corrupted so far.
    pub fn injections(&self) -> u64 {
        self.injections
    }

    /// `true` once the activation window is exhausted.
    pub fn exhausted(&self) -> bool {
        self.window.duration_packets != u64::MAX && self.injections >= self.window.duration_packets
    }
}

impl WriteInterceptor for InjectionWrapper {
    fn on_write(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
        if ctx.process != self.expected_process || ctx.fd != self.expected_fd {
            return WriteAction::Forward;
        }
        let Some(&byte0) = buf.first() else {
            return WriteAction::Forward;
        };
        if !self.trigger_values.contains(&byte0) {
            return WriteAction::Forward;
        }
        self.triggers_seen += 1;
        let past_delay = self.triggers_seen > self.window.delay_triggers;
        if past_delay && !self.exhausted() && self.corruption.apply(buf) {
            self.injections += 1;
        }
        WriteAction::Forward
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_hw::{RobotState, UsbChannel, UsbCommandPacket};
    use simbus::LinkConfig;

    fn ctx(seq: u64) -> WriteContext {
        WriteContext {
            time: SimTime::ZERO,
            seq,
            process: UsbChannel::PROCESS,
            fd: UsbChannel::BOARD_FD,
        }
    }

    fn packet(state: RobotState, wd: bool) -> Vec<u8> {
        UsbCommandPacket { state, watchdog: wd, dac: [100, 200, 300, 0, 0, 0, 0, 0] }
            .encode()
            .to_vec()
    }

    #[test]
    fn logging_wrapper_captures_robot_traffic_only() {
        let log = capture_log();
        let mut w = LoggingWrapper::new(Arc::clone(&log));
        let mut buf = packet(RobotState::PedalDown, true);
        assert_eq!(w.on_write(&mut buf, &ctx(0)), WriteAction::Forward);
        // A write from a different process is ignored.
        let other = WriteContext { process: "bash", ..ctx(1) };
        w.on_write(&mut buf, &other);
        // A write to a different fd is ignored.
        let other_fd = WriteContext { fd: 3, ..ctx(2) };
        w.on_write(&mut buf, &other_fd);
        assert_eq!(w.captured(), 1);
        assert_eq!(log.lock().len(), 1);
        assert_eq!(log.lock()[0].bytes, buf);
    }

    #[test]
    fn logging_wrapper_never_mutates() {
        let log = capture_log();
        let mut w = LoggingWrapper::new(log);
        let original = packet(RobotState::PedalDown, false);
        let mut buf = original.clone();
        w.on_write(&mut buf, &ctx(0));
        assert_eq!(buf, original);
    }

    #[test]
    fn logging_wrapper_exfiltrates_over_udp() {
        let log = capture_log();
        let link: SimLink<LoggedPacket> = SimLink::new(LinkConfig::ideal(), 1);
        let mut w = LoggingWrapper::new(log).with_exfiltration(link);
        let mut buf = packet(RobotState::Init, true);
        w.on_write(&mut buf, &ctx(0));
        assert_eq!(w.captured(), 1);
    }

    #[test]
    fn injection_fires_only_in_pedal_down() {
        let mut w = InjectionWrapper::pedal_down_trigger(
            Corruption::SetByte { offset: 2, value: 77 },
            ActivationWindow::immediate_persistent(),
        );
        // Pedal Up: byte0 = 0x07/0x17, not in trigger set.
        let mut up = packet(RobotState::PedalUp, true);
        let before = up.clone();
        w.on_write(&mut up, &ctx(0));
        assert_eq!(up, before);
        assert_eq!(w.injections(), 0);
        // Pedal Down with watchdog (0x1F) fires.
        let mut down = packet(RobotState::PedalDown, true);
        w.on_write(&mut down, &ctx(1));
        assert_eq!(down[2], 77);
        assert_eq!(w.injections(), 1);
        // Pedal Down without watchdog (0x0F) also fires.
        let mut down = packet(RobotState::PedalDown, false);
        w.on_write(&mut down, &ctx(2));
        assert_eq!(w.injections(), 2);
    }

    #[test]
    fn corrupted_packet_still_decodes_on_stock_board() {
        // The essence of the TOCTOU attack: the corrupted packet is accepted
        // downstream because the board never verifies integrity.
        let mut w = InjectionWrapper::pedal_down_trigger(
            Corruption::AddDacWord { channel: 0, delta: 12_000 },
            ActivationWindow::immediate_persistent(),
        );
        let mut buf = packet(RobotState::PedalDown, true);
        w.on_write(&mut buf, &ctx(0));
        let decoded = UsbCommandPacket::decode_unchecked(&buf).unwrap();
        assert_eq!(decoded.dac[0], 12_100);
        assert_eq!(decoded.state, RobotState::PedalDown);
    }

    #[test]
    fn activation_window_delay_and_duration() {
        let mut w = InjectionWrapper::pedal_down_trigger(
            Corruption::SetByte { offset: 3, value: 9 },
            ActivationWindow::delayed(2, 3),
        );
        let mut hits = 0;
        for seq in 0..10 {
            let mut buf = packet(RobotState::PedalDown, seq % 2 == 0);
            w.on_write(&mut buf, &ctx(seq));
            if buf[3] == 9 {
                hits += 1;
            }
        }
        assert_eq!(hits, 3, "exactly `duration` packets corrupted");
        assert_eq!(w.triggers_seen(), 10);
        assert!(w.exhausted());
    }

    #[test]
    fn add_dac_word_wraps_like_hardware() {
        let c = Corruption::AddDacWord { channel: 1, delta: i16::MAX };
        let mut buf = packet(RobotState::PedalDown, false);
        assert!(c.apply(&mut buf));
        let decoded = UsbCommandPacket::decode_unchecked(&buf).unwrap();
        assert_eq!(decoded.dac[1], 200i16.wrapping_add(i16::MAX));
    }

    #[test]
    fn out_of_range_corruption_is_noop() {
        let c = Corruption::SetByte { offset: 99, value: 1 };
        let mut buf = packet(RobotState::PedalDown, false);
        let before = buf.clone();
        assert!(!c.apply(&mut buf));
        assert_eq!(buf, before);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_trigger_set_panics() {
        let _ = InjectionWrapper::with_trigger(
            vec![],
            Corruption::SetByte { offset: 0, value: 0 },
            ActivationWindow::immediate_persistent(),
        );
    }
}
