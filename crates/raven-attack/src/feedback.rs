//! Read-path eavesdropping and motion-aware triggering.
//!
//! The paper notes that the same byte-level analysis applied to the `write`
//! stream "can be done on the data collected from the read system calls to
//! eavesdrop on the feedback received from motor encoders" (§III.B.2). This
//! module implements that direction:
//!
//! * [`FeedbackLogger`] — the read-path twin of the logging wrapper;
//! * [`encoder_activity`] — recovers a per-packet motion-activity signal
//!   from raw feedback bytes, without knowing the packet layout (the
//!   attacker hypothesizes 3-byte little-endian words and measures their
//!   frame-to-frame deltas);
//! * [`MotionSensor`] / [`GatedInjection`] — a sharper trigger than
//!   Byte 0 alone: inject only when the robot is in Pedal Down *and the
//!   encoders show active motion*, i.e. while the surgeon is actually
//!   cutting — maximizing harm and minimizing the attacker's exposure
//!   window.

use std::sync::Arc;

use parking_lot::Mutex;
use raven_hw::channel::{ReadInterceptor, WriteAction, WriteContext, WriteInterceptor};
use serde::{Deserialize, Serialize};

use crate::wrappers::{CaptureLog, Corruption, InjectionWrapper, LoggedPacket};

/// Read-path eavesdropper: records every feedback buffer.
#[derive(Debug)]
pub struct FeedbackLogger {
    log: CaptureLog,
    captured: u64,
}

impl FeedbackLogger {
    /// Interceptor name.
    pub const NAME: &'static str = "malicious-feedback-logger";

    /// Creates a logger recording into `log`.
    pub fn new(log: CaptureLog) -> Self {
        FeedbackLogger { log, captured: 0 }
    }

    /// Packets captured.
    pub fn captured(&self) -> u64 {
        self.captured
    }
}

impl ReadInterceptor for FeedbackLogger {
    fn on_read(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) {
        self.log.lock().push(LoggedPacket { time: ctx.time, seq: ctx.seq, bytes: buf.clone() });
        self.captured += 1;
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

/// Decodes a feedback buffer the way the attacker hypothesizes it: byte 0 is
/// status, the payload is consecutive 3-byte little-endian signed words.
fn hypothesized_words(bytes: &[u8]) -> Vec<i32> {
    let payload = &bytes[1..bytes.len().saturating_sub(1)];
    payload
        .chunks_exact(3)
        .map(|c| {
            let raw = u32::from(c[0]) | u32::from(c[1]) << 8 | u32::from(c[2]) << 16;
            ((raw << 8) as i32) >> 8
        })
        .collect()
}

/// Per-packet motion activity: the summed absolute word deltas between
/// consecutive feedback packets (encoder counts per packet). High values =
/// the robot is moving.
pub fn encoder_activity(capture: &[LoggedPacket]) -> Vec<(simbus::SimTime, f64)> {
    let mut out = Vec::new();
    let mut last: Option<Vec<i32>> = None;
    for pkt in capture {
        let words = hypothesized_words(&pkt.bytes);
        if let Some(prev) = &last {
            if prev.len() == words.len() {
                let activity: f64 = words
                    .iter()
                    .zip(prev)
                    .map(|(a, b)| f64::from((a - b).abs().min(1 << 20)))
                    .sum();
                out.push((pkt.time, activity));
            }
        }
        last = Some(words);
    }
    out
}

/// Summary of the attacker's motion analysis over a capture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MotionSummary {
    /// Fraction of packets showing activity above the threshold.
    pub active_fraction: f64,
    /// Mean activity while active (counts/packet).
    pub mean_active_level: f64,
    /// The activity threshold used.
    pub threshold: f64,
}

/// Summarizes motion over a feedback capture with a given activity
/// threshold (encoder counts per packet).
pub fn summarize_motion(capture: &[LoggedPacket], threshold: f64) -> MotionSummary {
    let activity = encoder_activity(capture);
    if activity.is_empty() {
        return MotionSummary { active_fraction: 0.0, mean_active_level: 0.0, threshold };
    }
    let active: Vec<f64> = activity.iter().map(|(_, a)| *a).filter(|a| *a > threshold).collect();
    MotionSummary {
        active_fraction: active.len() as f64 / activity.len() as f64,
        mean_active_level: if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        },
        threshold,
    }
}

/// Shared live motion estimate between the read-path sensor and the
/// write-path gate.
#[derive(Debug, Default)]
pub struct MotionState {
    /// Exponential moving average of per-packet activity.
    pub activity_ema: f64,
    last_words: Option<Vec<i32>>,
}

/// Shareable motion state.
pub type SharedMotion = Arc<Mutex<MotionState>>;

/// Creates a fresh shared motion state.
pub fn shared_motion() -> SharedMotion {
    Arc::new(Mutex::new(MotionState::default()))
}

/// The read-path half: watches feedback and maintains the activity EMA.
#[derive(Debug)]
pub struct MotionSensor {
    state: SharedMotion,
}

impl MotionSensor {
    /// Interceptor name.
    pub const NAME: &'static str = "motion-sensor";

    /// Creates a sensor updating `state`.
    pub fn new(state: SharedMotion) -> Self {
        MotionSensor { state }
    }
}

impl ReadInterceptor for MotionSensor {
    fn on_read(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) {
        let words = hypothesized_words(buf);
        let mut st = self.state.lock();
        if let Some(prev) = &st.last_words {
            if prev.len() == words.len() {
                let activity: f64 = words
                    .iter()
                    .zip(prev)
                    .map(|(a, b)| f64::from((a - b).abs().min(1 << 20)))
                    .sum();
                // ~30 ms EMA at the 1 kHz read rate.
                st.activity_ema += (activity - st.activity_ema) / 30.0;
            }
        }
        st.last_words = Some(words);
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

/// The write-path half: an [`InjectionWrapper`] that additionally requires
/// live encoder activity above a threshold before corrupting.
#[derive(Debug)]
pub struct GatedInjection {
    inner: InjectionWrapper,
    state: SharedMotion,
    /// Minimum activity EMA (counts/packet) to fire.
    pub activity_threshold: f64,
    gated_out: u64,
}

impl GatedInjection {
    /// Interceptor name.
    pub const NAME: &'static str = "motion-gated-injection";

    /// Wraps an injection wrapper with a motion gate.
    pub fn new(inner: InjectionWrapper, state: SharedMotion, activity_threshold: f64) -> Self {
        GatedInjection { inner, state, activity_threshold, gated_out: 0 }
    }

    /// Packets that matched the state trigger but were suppressed by the
    /// motion gate.
    pub fn gated_out(&self) -> u64 {
        self.gated_out
    }

    /// Corruptions actually performed.
    pub fn injections(&self) -> u64 {
        self.inner.injections()
    }
}

impl WriteInterceptor for GatedInjection {
    fn on_write(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
        let moving = self.state.lock().activity_ema > self.activity_threshold;
        if moving {
            self.inner.on_write(buf, ctx)
        } else {
            // Count suppressions that *would* have matched the state trigger.
            if buf.first().is_some_and(|b0| matches!(b0, 0x0F | 0x1F)) {
                self.gated_out += 1;
            }
            WriteAction::Forward
        }
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

/// Convenience: builds the sensor/gate pair around a standard Pedal-Down
/// injection.
pub fn motion_gated_attack(
    corruption: Corruption,
    window: crate::wrappers::ActivationWindow,
    activity_threshold: f64,
) -> (MotionSensor, GatedInjection) {
    let state = shared_motion();
    let sensor = MotionSensor::new(Arc::clone(&state));
    let gate = GatedInjection::new(
        InjectionWrapper::pedal_down_trigger(corruption, window),
        state,
        activity_threshold,
    );
    (sensor, gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrappers::ActivationWindow;
    use raven_hw::{RobotState, UsbChannel, UsbCommandPacket, UsbFeedbackPacket};
    use simbus::SimTime;

    fn feedback(encoders: [i32; 8]) -> Vec<u8> {
        UsbFeedbackPacket {
            state: RobotState::PedalDown,
            watchdog: false,
            plc_fault: false,
            encoders,
        }
        .encode()
        .to_vec()
    }

    fn ctx(seq: u64) -> WriteContext {
        WriteContext {
            time: SimTime::ZERO,
            seq,
            process: UsbChannel::PROCESS,
            fd: UsbChannel::BOARD_FD,
        }
    }

    #[test]
    fn activity_tracks_motion() {
        let mut capture = Vec::new();
        // 50 idle packets, then 50 moving packets (300 counts/packet).
        for i in 0..100i32 {
            let pos = if i < 50 { 1000 } else { 1000 + (i - 50) * 300 };
            capture.push(LoggedPacket {
                time: SimTime::from_nanos(i as u64 * 1_000_000),
                seq: i as u64,
                bytes: feedback([pos, 0, 0, 0, 0, 0, 0, 0]),
            });
        }
        let activity = encoder_activity(&capture);
        assert_eq!(activity.len(), 99);
        assert!(activity[10].1 < 1.0, "idle phase must be quiet");
        assert!(activity[80].1 > 100.0, "moving phase must be loud");
        let summary = summarize_motion(&capture, 50.0);
        assert!((summary.active_fraction - 0.5).abs() < 0.05, "{summary:?}");
        assert!(summary.mean_active_level > 100.0);
    }

    #[test]
    fn empty_capture_summarizes_safely() {
        let s = summarize_motion(&[], 10.0);
        assert_eq!(s.active_fraction, 0.0);
    }

    #[test]
    fn gate_suppresses_injection_while_idle() {
        let (mut sensor, mut gate) = motion_gated_attack(
            Corruption::AddDacWord { channel: 0, delta: 9000 },
            ActivationWindow::immediate_persistent(),
            50.0,
        );
        let pedal_down =
            UsbCommandPacket { state: RobotState::PedalDown, watchdog: true, dac: [0; 8] };

        // Idle feedback: the gate stays closed.
        for i in 0..40u64 {
            let mut fb = feedback([1000, 0, 0, 0, 0, 0, 0, 0]);
            sensor.on_read(&mut fb, &ctx(i));
        }
        let mut buf = pedal_down.encode().to_vec();
        gate.on_write(&mut buf, &ctx(100));
        assert_eq!(gate.injections(), 0);
        assert_eq!(gate.gated_out(), 1);
        assert_eq!(
            UsbCommandPacket::decode_unchecked(&buf).unwrap().dac[0],
            0,
            "idle robot must not be attacked"
        );

        // Moving feedback: the gate opens.
        for i in 0..60u64 {
            let mut fb = feedback([1000 + 400 * i as i32, 0, 0, 0, 0, 0, 0, 0]);
            sensor.on_read(&mut fb, &ctx(200 + i));
        }
        let mut buf = pedal_down.encode().to_vec();
        gate.on_write(&mut buf, &ctx(300));
        assert_eq!(gate.injections(), 1);
        assert_eq!(UsbCommandPacket::decode_unchecked(&buf).unwrap().dac[0], 9000);
    }

    #[test]
    fn gate_still_respects_state_trigger() {
        let (mut sensor, mut gate) = motion_gated_attack(
            Corruption::SetByte { offset: 3, value: 9 },
            ActivationWindow::immediate_persistent(),
            10.0,
        );
        for i in 0..60u64 {
            let mut fb = feedback([1000 + 500 * i as i32, 0, 0, 0, 0, 0, 0, 0]);
            sensor.on_read(&mut fb, &ctx(i));
        }
        // Moving, but Pedal Up: inner trigger refuses.
        let pedal_up = UsbCommandPacket { state: RobotState::PedalUp, watchdog: true, dac: [0; 8] };
        let mut buf = pedal_up.encode().to_vec();
        gate.on_write(&mut buf, &ctx(100));
        assert_eq!(gate.injections(), 0);
        assert_eq!(buf[3], pedal_up.encode()[3]);
    }

    #[test]
    fn feedback_logger_captures() {
        let log = crate::wrappers::capture_log();
        let mut logger = FeedbackLogger::new(Arc::clone(&log));
        let mut fb = feedback([1, 2, 3, 4, 5, 6, 7, 8]);
        logger.on_read(&mut fb, &ctx(0));
        assert_eq!(logger.captured(), 1);
        assert_eq!(log.lock().len(), 1);
    }
}
