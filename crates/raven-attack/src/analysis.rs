//! Offline analysis of captured USB traffic — the Analysis phase of the
//! paper's Fig. 3, reproducing the methodology of Figs. 5 and 6.
//!
//! The attacker does not know the packet format. The paper's approach: "look
//! at the values of the packets byte by byte over time to see whether there
//! are patterns indicating a specific byte that may contain the state
//! information" (§III.B.2). The analysis finds that Byte 0 switches among 8
//! values; that its fifth bit toggles periodically (the watchdog square
//! wave); and that the remaining nibble takes exactly 4 values — matching
//! the 4-state operational state machine known from public documents. The
//! values observed while the robot is being actively teleoperated identify
//! "Pedal Down" and become the malware's trigger.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::wrappers::LoggedPacket;

/// Per-byte value statistics over a capture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteProfile {
    /// Byte offset within the packet.
    pub offset: usize,
    /// Distinct values observed.
    pub alphabet: BTreeSet<u8>,
    /// Number of value *changes* over the capture (low = state-like,
    /// high = data-like).
    pub transitions: u64,
}

impl ByteProfile {
    /// Distinct-value count.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet.len()
    }
}

/// Computes the per-byte profiles of a capture (the data behind Fig. 5(a)).
///
/// Only packets of the dominant length are considered (the attacker cannot
/// assume a single packet type on the channel).
pub fn byte_profiles(capture: &[LoggedPacket]) -> Vec<ByteProfile> {
    let Some(len) = dominant_length(capture) else {
        return Vec::new();
    };
    let packets: Vec<&LoggedPacket> = capture.iter().filter(|p| p.bytes.len() == len).collect();
    let mut profiles: Vec<ByteProfile> = (0..len)
        .map(|offset| ByteProfile { offset, alphabet: BTreeSet::new(), transitions: 0 })
        .collect();
    for (i, pkt) in packets.iter().enumerate() {
        for (offset, profile) in profiles.iter_mut().enumerate() {
            let b = pkt.bytes[offset];
            profile.alphabet.insert(b);
            if i > 0 && packets[i - 1].bytes[offset] != b {
                profile.transitions += 1;
            }
        }
    }
    profiles
}

fn dominant_length(capture: &[LoggedPacket]) -> Option<usize> {
    // BTreeMap, not HashMap: `max_by_key` keeps the *last* maximum, so with
    // sorted keys a tie deterministically resolves to the largest length
    // instead of whatever hash order produced (lint rule R2).
    let mut counts = std::collections::BTreeMap::new();
    for p in capture {
        *counts.entry(p.bytes.len()).or_insert(0usize) += 1;
    }
    counts.into_iter().max_by_key(|(_, c)| *c).map(|(len, _)| len)
}

/// The attacker's hypothesis about where the robot state lives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateByteHypothesis {
    /// Byte offset carrying the state.
    pub offset: usize,
    /// Bit mask of the periodically-toggling (watchdog) bit, if found.
    pub watchdog_mask: Option<u8>,
    /// The distinct state values after removing the watchdog bit, in order
    /// of first appearance in the capture.
    pub state_values: Vec<u8>,
}

impl StateByteHypothesis {
    /// The raw Byte-0 trigger values for the *last* state to appear —
    /// "Pedal Down" on a capture that reaches teleoperation — including
    /// both watchdog phases (the paper's 0x0F and 0x1F).
    pub fn trigger_values(&self) -> Vec<u8> {
        let Some(&operational) = self.state_values.last() else {
            return Vec::new();
        };
        match self.watchdog_mask {
            Some(mask) => vec![operational, operational | mask],
            None => vec![operational],
        }
    }
}

/// Why the analysis failed to find a state byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisError {
    /// Not enough packets to analyze.
    CaptureTooSmall,
    /// No byte with a small, state-like alphabet was found.
    NoStateLikeByte,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::CaptureTooSmall => f.write_str("capture too small to analyze"),
            AnalysisError::NoStateLikeByte => f.write_str("no state-like byte found"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Identifies the state byte: the byte whose alphabet is small (3–16
/// values) but not constant, preferring the smallest alphabet after
/// removing one toggling bit.
///
/// # Errors
///
/// [`AnalysisError`] when the capture is too small or featureless.
pub fn find_state_byte(capture: &[LoggedPacket]) -> Result<StateByteHypothesis, AnalysisError> {
    if capture.len() < 64 {
        return Err(AnalysisError::CaptureTooSmall);
    }
    let profiles = byte_profiles(capture);
    let len = profiles.len();
    let packets: Vec<&LoggedPacket> = capture.iter().filter(|p| p.bytes.len() == len).collect();

    let mut best: Option<StateByteHypothesis> = None;
    let mut best_score = usize::MAX;
    for profile in &profiles {
        let size = profile.alphabet_size();
        if !(3..=16).contains(&size) {
            continue;
        }
        let series: Vec<u8> = packets.iter().map(|p| p.bytes[profile.offset]).collect();
        let watchdog_mask = find_toggling_bit(&series);
        let masked: Vec<u8> = match watchdog_mask {
            Some(mask) => series.iter().map(|b| b & !mask).collect(),
            None => series.clone(),
        };
        let state_values = first_appearance_order(&masked);
        // Score: fewer residual states is more state-machine-like, and a
        // byte carrying a periodic (watchdog-like) bit is a far stronger
        // candidate than one without — a monotone counter byte can have a
        // small alphabet too, but no embedded square wave (the structure
        // the paper keys on in §III.B.2).
        let score = state_values.len() + if watchdog_mask.is_none() { 100 } else { 0 };
        if state_values.len() >= 2 && score < best_score {
            best_score = score;
            best =
                Some(StateByteHypothesis { offset: profile.offset, watchdog_mask, state_values });
        }
    }
    best.ok_or(AnalysisError::NoStateLikeByte)
}

/// Finds a bit that toggles on ≥25% of consecutive samples — the signature
/// of the watchdog square wave (it toggles every packet in our system; the
/// loose bound tolerates captures that interleave packet types).
fn find_toggling_bit(series: &[u8]) -> Option<u8> {
    for bit in 0..8u8 {
        let mask = 1u8 << bit;
        let toggles = series.windows(2).filter(|w| (w[0] ^ w[1]) & mask != 0).count();
        if toggles * 4 >= series.len().saturating_sub(1) && toggles > 8 {
            return Some(mask);
        }
    }
    None
}

fn first_appearance_order(series: &[u8]) -> Vec<u8> {
    let mut seen = Vec::new();
    for &b in series {
        if !seen.contains(&b) {
            seen.push(b);
        }
    }
    seen
}

/// Segments a capture into runs of inferred state (the labeled staircase of
/// Fig. 6), using a hypothesis from [`find_state_byte`].
pub fn infer_state_segments(
    capture: &[LoggedPacket],
    hypothesis: &StateByteHypothesis,
) -> Vec<StateSegment> {
    let mask = hypothesis.watchdog_mask.unwrap_or(0);
    let mut segments: Vec<StateSegment> = Vec::new();
    for pkt in capture {
        let Some(&b) = pkt.bytes.get(hypothesis.offset) else {
            continue;
        };
        let value = b & !mask;
        match segments.last_mut() {
            Some(seg) if seg.value == value => seg.packets += 1,
            _ => segments.push(StateSegment { value, start: pkt.time, packets: 1 }),
        }
    }
    segments
}

/// One run of constant inferred state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSegment {
    /// The masked state value.
    pub value: u8,
    /// Capture time of the first packet in the run.
    pub start: simbus::SimTime,
    /// Packets in the run.
    pub packets: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_hw::{RobotState, UsbCommandPacket};
    use simbus::{SimDuration, SimTime};

    /// Builds a synthetic capture mimicking a full session:
    /// E-STOP → Init → Pedal Up → Pedal Down → Pedal Up → Pedal Down.
    fn session_capture() -> Vec<LoggedPacket> {
        let phases: &[(RobotState, u64)] = &[
            (RobotState::EStop, 50),
            (RobotState::Init, 200),
            (RobotState::PedalUp, 100),
            (RobotState::PedalDown, 400),
            (RobotState::PedalUp, 50),
            (RobotState::PedalDown, 200),
        ];
        let mut out = Vec::new();
        let mut seq = 0u64;
        for &(state, count) in phases {
            for k in 0..count {
                let pkt = UsbCommandPacket {
                    state,
                    watchdog: seq.is_multiple_of(2),
                    // DAC values vary like real motion (data-like bytes).
                    dac: [
                        (1000.0 * ((seq as f64) * 0.1).sin()) as i16,
                        (800.0 * ((seq as f64) * 0.07).cos()) as i16,
                        (k as i16).wrapping_mul(13),
                        0,
                        0,
                        0,
                        0,
                        0,
                    ],
                };
                out.push(LoggedPacket {
                    time: SimTime::ZERO + SimDuration::from_millis(seq),
                    seq,
                    bytes: pkt.encode().to_vec(),
                });
                seq += 1;
            }
        }
        out
    }

    #[test]
    fn byte_profiles_show_byte0_small_alphabet() {
        let profiles = byte_profiles(&session_capture());
        assert_eq!(profiles.len(), 18);
        // Byte 0: 4 states × 2 watchdog phases = 8 values (Fig. 5(c)).
        assert_eq!(profiles[0].alphabet_size(), 8);
        // DAC bytes are data-like: many values.
        assert!(profiles[1].alphabet_size() > 16 || profiles[2].alphabet_size() > 16);
    }

    #[test]
    fn finds_byte0_with_watchdog_mask() {
        let h = find_state_byte(&session_capture()).unwrap();
        assert_eq!(h.offset, 0);
        assert_eq!(h.watchdog_mask, Some(0x10), "fifth bit is the watchdog");
        // Four residual values, in state-machine order of appearance.
        assert_eq!(h.state_values.len(), 4);
        assert_eq!(h.state_values[0], RobotState::EStop.nibble());
        assert_eq!(*h.state_values.last().unwrap(), RobotState::PedalDown.nibble());
    }

    #[test]
    fn trigger_values_match_paper() {
        let h = find_state_byte(&session_capture()).unwrap();
        let mut t = h.trigger_values();
        t.sort_unstable();
        assert_eq!(t, vec![0x0F, 0x1F], "the paper's trigger values");
    }

    #[test]
    fn segments_reconstruct_the_session() {
        let capture = session_capture();
        let h = find_state_byte(&capture).unwrap();
        let segs = infer_state_segments(&capture, &h);
        let values: Vec<u8> = segs.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![0x0, 0x3, 0x7, 0xF, 0x7, 0xF], "state staircase of Fig. 6");
        assert_eq!(segs[3].packets, 400);
    }

    #[test]
    fn too_small_capture_fails() {
        let capture: Vec<LoggedPacket> = session_capture().into_iter().take(10).collect();
        assert_eq!(find_state_byte(&capture), Err(AnalysisError::CaptureTooSmall));
    }

    #[test]
    fn featureless_capture_fails() {
        // Constant packets: every byte has alphabet size 1.
        let capture: Vec<LoggedPacket> = (0..200)
            .map(|seq| LoggedPacket { time: SimTime::ZERO, seq, bytes: vec![0u8; 18] })
            .collect();
        assert_eq!(find_state_byte(&capture), Err(AnalysisError::NoStateLikeByte));
    }

    #[test]
    fn mixed_lengths_use_dominant() {
        let mut capture = session_capture();
        // Sprinkle in a few feedback-length packets; analysis must not trip.
        for i in 0..5 {
            capture.insert(
                i * 7,
                LoggedPacket { time: SimTime::ZERO, seq: 10_000 + i as u64, bytes: vec![0; 26] },
            );
        }
        let h = find_state_byte(&capture).unwrap();
        assert_eq!(h.offset, 0);
    }

    #[test]
    fn analysis_error_display() {
        assert!(format!("{}", AnalysisError::CaptureTooSmall).contains("small"));
        assert!(format!("{}", AnalysisError::NoStateLikeByte).contains("state"));
    }
}
