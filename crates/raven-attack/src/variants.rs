//! The Table I attack-variant catalog.
//!
//! The paper's Table I lists attack variants by target layer of the control
//! structure, the wrapped system library, the malicious action, and the
//! observed impact. This module provides (a) the machine-readable catalog —
//! regenerated verbatim by the `table1_variants` bench — and (b) concrete
//! interceptor implementations for the variants that act on paths our
//! simulation exposes (ITP network, USB write, USB read).

use raven_hw::channel::{ReadInterceptor, WriteAction, WriteContext, WriteInterceptor};
use raven_teleop::ItpPacket;
use serde::{Deserialize, Serialize};

/// Target layer in the control structure (column 1 of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetLayer {
    /// Master console ↔ control software (network).
    MasterConsoleAndControl,
    /// Inside the control software (math library).
    ControlSoftware,
    /// Control software ↔ hardware interface (read/write of PLC state).
    ControlAndHardwareInterface,
    /// Software ↔ physical robot (motor commands, encoder feedback).
    SoftwareAndPhysical,
}

/// Observed impact class (column 4 of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObservedImpact {
    /// The robot follows a trajectory the operator never commanded.
    HijackTrajectory,
    /// Transition to an unwanted halt state (E-STOP).
    UnwantedEStop,
    /// Inverse-kinematics failure halt ("IK-fail").
    UnwantedIkFail,
    /// Initialization never completes.
    HomingFailure,
    /// Abrupt jump of the robotic arms.
    AbruptJump,
    /// No observable impact.
    None,
}

impl std::fmt::Display for ObservedImpact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObservedImpact::HijackTrajectory => "Hijack trajectory",
            ObservedImpact::UnwantedEStop => "Unwanted state (E-STOP)",
            ObservedImpact::UnwantedIkFail => "Unwanted state (IK-fail)",
            ObservedImpact::HomingFailure => "Homing Failure",
            ObservedImpact::AbruptJump => "Abrupt Jump",
            ObservedImpact::None => "None",
        };
        f.write_str(s)
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct VariantSpec {
    /// Short identifier used by the experiment harness.
    pub id: &'static str,
    /// Target layer.
    pub layer: TargetLayer,
    /// The system library the paper's malware wraps.
    pub target_library: &'static str,
    /// The malicious action.
    pub action: &'static str,
    /// The impact the paper reports.
    pub paper_impact: ObservedImpact,
}

/// The full Table I catalog.
pub fn catalog() -> Vec<VariantSpec> {
    vec![
        VariantSpec {
            id: "net-port",
            layer: TargetLayer::MasterConsoleAndControl,
            target_library: "socket (bind, recv_from)",
            action: "change port number",
            paper_impact: ObservedImpact::UnwantedEStop,
        },
        VariantSpec {
            id: "net-content",
            layer: TargetLayer::MasterConsoleAndControl,
            target_library: "socket (bind, recv_from)",
            action: "change packet content",
            paper_impact: ObservedImpact::HijackTrajectory,
        },
        VariantSpec {
            id: "math-drift",
            layer: TargetLayer::ControlSoftware,
            target_library: "math (sin, cos)",
            action: "add drift to output/input",
            paper_impact: ObservedImpact::UnwantedIkFail,
        },
        VariantSpec {
            id: "plc-state",
            layer: TargetLayer::ControlAndHardwareInterface,
            target_library: "interface (read, write)",
            action: "change robot state in PLC",
            paper_impact: ObservedImpact::HomingFailure,
        },
        VariantSpec {
            id: "motor-cmd",
            layer: TargetLayer::SoftwareAndPhysical,
            target_library: "interface (write)",
            action: "change motor commands",
            paper_impact: ObservedImpact::AbruptJump,
        },
        VariantSpec {
            id: "encoder-fb",
            layer: TargetLayer::SoftwareAndPhysical,
            target_library: "interface (read)",
            action: "change encoder feedback",
            paper_impact: ObservedImpact::AbruptJump,
        },
    ]
}

/// Scenario-A man-in-the-middle on the ITP stream: re-encodes packets with a
/// constant additional displacement per cycle while the pedal is down,
/// for a bounded number of packets.
///
/// The injected motion is well-formed ITP — "preserving their legitimate
/// format" (paper §I) — so the network-layer checksum validation passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItpMitm {
    /// Extra displacement injected per packet (meters).
    pub extra_delta: raven_math::Vec3,
    /// Packets to corrupt once triggered.
    pub duration_packets: u64,
    /// Triggered packets to skip first.
    pub delay_packets: u64,
    corrupted: u64,
    seen: u64,
}

impl ItpMitm {
    /// Creates a MITM injecting `extra_delta` per packet for
    /// `duration_packets` packets after `delay_packets` pedal-down packets.
    pub fn new(extra_delta: raven_math::Vec3, delay_packets: u64, duration_packets: u64) -> Self {
        ItpMitm { extra_delta, duration_packets, delay_packets, corrupted: 0, seen: 0 }
    }

    /// Processes one on-the-wire ITP buffer, possibly replacing it with a
    /// corrupted re-encoding.
    pub fn process(&mut self, buf: &mut Vec<u8>) {
        let Ok(mut pkt) = ItpPacket::decode(buf) else {
            return;
        };
        if !pkt.pedal {
            return;
        }
        self.seen += 1;
        if self.seen > self.delay_packets && self.corrupted < self.duration_packets {
            pkt.delta_pos += self.extra_delta;
            *buf = pkt.encode().to_vec();
            self.corrupted += 1;
        }
    }

    /// Packets corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
}

/// The `plc-state` variant: rewrites the state nibble of Byte 0 on the USB
/// write path so the PLC sees a state the software never commanded.
#[derive(Debug)]
pub struct StateNibbleRewrite {
    /// The nibble to substitute.
    pub forced_nibble: u8,
    rewrites: u64,
}

impl StateNibbleRewrite {
    /// Interceptor name.
    pub const NAME: &'static str = "plc-state-rewrite";

    /// Forces every command packet's state nibble to `forced_nibble`.
    pub fn new(forced_nibble: u8) -> Self {
        StateNibbleRewrite { forced_nibble: forced_nibble & 0x0F, rewrites: 0 }
    }

    /// Rewrites performed.
    pub fn rewrites(&self) -> u64 {
        self.rewrites
    }
}

impl WriteInterceptor for StateNibbleRewrite {
    fn on_write(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
        if let Some(b0) = buf.first_mut() {
            *b0 = (*b0 & 0xF0) | self.forced_nibble;
            self.rewrites += 1;
        }
        WriteAction::Forward
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

/// The `encoder-fb` variant: adds a constant offset to one encoder word on
/// the USB read path, creating a phantom position error the PID then
/// "corrects" — physically moving the arm.
#[derive(Debug)]
pub struct EncoderCorruption {
    /// Encoder channel 0–7.
    pub channel: usize,
    /// Counts added to every reading.
    pub offset_counts: i32,
    /// Reads to pass through unmodified before the corruption engages —
    /// a constant offset present from power-up is calibrated away by
    /// homing; the attack works by engaging *mid-operation*.
    pub activate_after_reads: u64,
    reads: u64,
    corruptions: u64,
}

impl EncoderCorruption {
    /// Interceptor name.
    pub const NAME: &'static str = "encoder-feedback-corruption";

    /// Creates a corruption active from the first read.
    pub fn new(channel: usize, offset_counts: i32) -> Self {
        Self::delayed(channel, offset_counts, 0)
    }

    /// Creates a corruption that engages after `activate_after_reads`.
    pub fn delayed(channel: usize, offset_counts: i32, activate_after_reads: u64) -> Self {
        EncoderCorruption { channel, offset_counts, activate_after_reads, reads: 0, corruptions: 0 }
    }

    /// Corruptions applied.
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }
}

impl ReadInterceptor for EncoderCorruption {
    fn on_read(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) {
        self.reads += 1;
        if self.reads <= self.activate_after_reads {
            return;
        }
        // Feedback layout: byte 0 status, then 3 bytes per channel (i24 LE).
        let lo = 1 + 3 * self.channel;
        if lo + 2 >= buf.len() {
            return;
        }
        let raw = u32::from(buf[lo]) | u32::from(buf[lo + 1]) << 8 | u32::from(buf[lo + 2]) << 16;
        let value = ((raw << 8) as i32) >> 8;
        let corrupted = value.wrapping_add(self.offset_counts);
        let le = corrupted.to_le_bytes();
        buf[lo] = le[0];
        buf[lo + 1] = le[1];
        buf[lo + 2] = le[2];
        self.corruptions += 1;
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_hw::{RobotState, UsbCommandPacket, UsbFeedbackPacket};
    use raven_math::Vec3;
    use simbus::SimTime;

    fn ctx() -> WriteContext {
        WriteContext {
            time: SimTime::ZERO,
            seq: 0,
            process: raven_hw::UsbChannel::PROCESS,
            fd: raven_hw::UsbChannel::BOARD_FD,
        }
    }

    #[test]
    fn catalog_covers_all_layers() {
        let cat = catalog();
        assert_eq!(cat.len(), 6);
        let layers: std::collections::HashSet<_> =
            cat.iter().map(|v| format!("{:?}", v.layer)).collect();
        assert_eq!(layers.len(), 4, "all four layers of Table I present");
        // IDs unique.
        let ids: std::collections::HashSet<_> = cat.iter().map(|v| v.id).collect();
        assert_eq!(ids.len(), cat.len());
    }

    #[test]
    fn itp_mitm_corrupts_only_pedal_down_packets() {
        let mut mitm = ItpMitm::new(Vec3::new(1e-3, 0.0, 0.0), 0, u64::MAX);
        let up = ItpPacket { pedal: false, ..Default::default() };
        let mut buf = up.encode().to_vec();
        mitm.process(&mut buf);
        assert_eq!(ItpPacket::decode(&buf).unwrap().delta_pos, Vec3::ZERO);
        assert_eq!(mitm.corrupted(), 0);

        let down = ItpPacket { pedal: true, ..Default::default() };
        let mut buf = down.encode().to_vec();
        mitm.process(&mut buf);
        let decoded = ItpPacket::decode(&buf).unwrap();
        assert!((decoded.delta_pos.x - 1e-3).abs() < 1e-7);
        assert_eq!(mitm.corrupted(), 1);
    }

    #[test]
    fn itp_mitm_respects_delay_and_duration() {
        let mut mitm = ItpMitm::new(Vec3::new(1e-3, 0.0, 0.0), 2, 3);
        let mut hits = 0;
        for _ in 0..10 {
            let mut buf = ItpPacket { pedal: true, ..Default::default() }.encode().to_vec();
            mitm.process(&mut buf);
            if ItpPacket::decode(&buf).unwrap().delta_pos.x > 1e-4 {
                hits += 1;
            }
        }
        assert_eq!(hits, 3);
    }

    #[test]
    fn itp_mitm_output_always_validates() {
        let mut mitm = ItpMitm::new(Vec3::new(5e-3, -1e-3, 2e-3), 0, u64::MAX);
        let mut buf = ItpPacket { pedal: true, seq: 42, ..Default::default() }.encode().to_vec();
        mitm.process(&mut buf);
        assert!(ItpPacket::decode(&buf).is_ok(), "MITM output must remain well-formed");
    }

    #[test]
    fn state_nibble_rewrite_changes_plc_view() {
        let mut rw = StateNibbleRewrite::new(RobotState::EStop.nibble());
        let pkt = UsbCommandPacket { state: RobotState::PedalDown, watchdog: true, dac: [0; 8] };
        let mut buf = pkt.encode().to_vec();
        rw.on_write(&mut buf, &ctx());
        let decoded = UsbCommandPacket::decode_unchecked(&buf).unwrap();
        assert_eq!(decoded.state, RobotState::EStop);
        assert!(decoded.watchdog, "watchdog bit preserved");
        assert_eq!(rw.rewrites(), 1);
    }

    #[test]
    fn encoder_corruption_shifts_reading() {
        let mut ec = EncoderCorruption::new(1, 5000);
        let fb = UsbFeedbackPacket {
            state: RobotState::PedalDown,
            watchdog: false,
            plc_fault: false,
            encoders: [100, 200, 300, 0, 0, 0, 0, 0],
        };
        let mut buf = fb.encode().to_vec();
        ec.on_read(&mut buf, &ctx());
        let decoded = UsbFeedbackPacket::decode_unchecked(&buf).unwrap();
        assert_eq!(decoded.encoders[1], 5200);
        assert_eq!(decoded.encoders[0], 100, "other channels untouched");
        assert_eq!(ec.corruptions(), 1);
    }

    #[test]
    fn encoder_corruption_handles_negative_values() {
        let mut ec = EncoderCorruption::new(0, -1000);
        let fb = UsbFeedbackPacket {
            state: RobotState::PedalUp,
            watchdog: false,
            plc_fault: false,
            encoders: [500, 0, 0, 0, 0, 0, 0, 0],
        };
        let mut buf = fb.encode().to_vec();
        ec.on_read(&mut buf, &ctx());
        let decoded = UsbFeedbackPacket::decode_unchecked(&buf).unwrap();
        assert_eq!(decoded.encoders[0], -500);
    }

    #[test]
    fn impact_display_matches_table_wording() {
        assert_eq!(format!("{}", ObservedImpact::UnwantedEStop), "Unwanted state (E-STOP)");
        assert_eq!(format!("{}", ObservedImpact::AbruptJump), "Abrupt Jump");
    }
}
