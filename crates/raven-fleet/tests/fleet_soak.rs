//! 10k-session soak: the monitor plane's scaling claim, executed.
//!
//! 10,000 admitted sessions, 90 % of them idle (Pedal-Up) for their
//! whole lifetime, multiplexed over a 64-lane batch detector. Asserts:
//!
//! * the run completes (the wake queue drains — no livelock under
//!   sustained lane contention);
//! * every idle session consumed exactly zero detector assessments
//!   and zero cycles of anyone's time;
//! * every active session got its full assessment budget despite
//!   156:1 session-to-lane oversubscription;
//! * peak RSS stays bounded — the fleet's footprint is the detector
//!   plus per-session descriptors, not 10,000 simulators.
//!
//! `#[ignore]`-gated: ~seconds of detector arithmetic, run in the CI
//! bench-smoke job (`cargo test -q --release -p raven-fleet -- --ignored`).

use raven_detect::{DetectionThresholds, DetectorConfig};
use raven_fleet::{FleetMonitor, MonitorConfig, MonitorSession};
use raven_kinematics::NUM_AXES;

const SESSIONS: usize = 10_000;
const IDLE_EVERY: usize = 10; // 1 in 10 is active → 90 % idle.
const WIDTH: usize = 64;

/// Peak resident set (VmHWM) in kibibytes, from the kernel's
/// accounting. Linux-only; elsewhere the RSS bound is skipped.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
#[ignore = "10k-session soak; run in the CI bench-smoke job"]
fn ten_thousand_sessions_mostly_idle() {
    let sessions: Vec<MonitorSession> = (0..SESSIONS)
        .map(|i| {
            let seed = 0xF1EE7 ^ (i as u64).wrapping_mul(7919);
            if i % IDLE_EVERY == 0 {
                // The active minority: short staggered duty cycles.
                MonitorSession {
                    seed,
                    start_ms: (i % 977) as u64,
                    active_ms: 20 + (i % 4) as u64 * 10,
                    idle_ms: 40 + (i % 7) as u64 * 15,
                    phases: 2,
                }
            } else {
                MonitorSession::idle(seed)
            }
        })
        .collect();
    let config = MonitorConfig {
        width: WIDTH,
        detector: DetectorConfig::default(),
        thresholds: DetectionThresholds {
            motor_accel: [200.0; NUM_AXES],
            motor_vel: [20.0; NUM_AXES],
            joint_vel: [2.0; NUM_AXES],
        },
    };

    let mut monitor = FleetMonitor::new(config, sessions.clone());
    let report = monitor.run();

    assert_eq!(report.totals.len(), SESSIONS);
    let mut active_assessments = 0u64;
    for (i, (s, t)) in sessions.iter().zip(&report.totals).enumerate() {
        if s.phases == 0 {
            assert_eq!(t.assessments, 0, "idle session {i} was assessed");
            assert_eq!(t.phases_run, 0, "idle session {i} ran a phase");
            assert_eq!(t.deferrals, 0, "idle session {i} contended for a lane");
        } else {
            assert_eq!(t.phases_run, s.phases, "active session {i} starved");
            assert_eq!(
                t.assessments,
                s.phases as u64 * s.active_ms,
                "active session {i} short-changed"
            );
            active_assessments += t.assessments;
        }
    }
    // 1 000 active sessions × 2 phases × (20..50) ms each.
    assert!(active_assessments >= 1_000 * 2 * 20, "soak did too little work");
    assert!(report.peak_active <= WIDTH);
    // Idle sessions add zero cycles: total cycles is bounded by the
    // serialized active time (deferral can stretch but never inflate
    // assessments), far below the 10k × horizon a polling loop pays.
    assert!(report.cycles < active_assessments, "idle sessions leaked cycles");

    if let Some(kib) = peak_rss_kib() {
        // 64 detector lanes + 10k session descriptors is a few MiB;
        // 512 MiB flags an accidental per-session simulator (a full
        // rig fleet of this size would be tens of GiB).
        assert!(kib < 512 * 1024, "peak RSS {kib} KiB exceeds the soak bound");
    }
}
