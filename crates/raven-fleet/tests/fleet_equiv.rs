//! Fleet ↔ scalar equivalence: every session admitted to a fleet of N
//! mixed-scenario sessions must produce a byte-identical artifact to
//! the same spec run standalone through `Simulation::run_session` —
//! verdict sequence, alarm/E-STOP timing, event log, metrics, incident
//! report, everything `SessionArtifact` serializes.
//!
//! Pinned across shard widths {1, 4, 16}, single- and multi-worker
//! dispatch, and both alarm fusion rules. The grouping sweep also
//! cross-checks the fleets against *each other*: one scalar reference
//! per spec, every (shard, workers) combination compared to it.

use raven_detect::FusionRule;
use raven_fleet::{run_standalone, standard_mix, FleetConfig, FleetEngine, SessionSpec};

/// Runs `specs` through a fleet with the given dispatch shape and
/// returns each artifact's serialized bytes, id order.
fn fleet_artifacts(specs: &[SessionSpec], config: FleetConfig) -> Vec<String> {
    let mut fleet = FleetEngine::new(config);
    for spec in specs {
        fleet.admit(spec.clone());
    }
    let report = fleet.run();
    assert_eq!(report.artifacts.len(), specs.len(), "every admitted session retires");
    report.artifacts.iter().map(|a| a.to_json()).collect()
}

#[test]
fn mixed_fleet_matches_standalone_across_shard_widths_and_workers() {
    // 10 sessions cover each scenario twice with distinct seeds,
    // staggered horizons (800/1200/1600 ms) and admission offsets.
    let specs = standard_mix(10, 3001);
    let reference: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(id, spec)| run_standalone(spec, id as u64).to_json())
        .collect();

    for shard_width in [1usize, 4, 16] {
        for workers in [1usize, 4] {
            let config = FleetConfig { shard_width, workers: Some(workers), burst_ms: 256 };
            let got = fleet_artifacts(&specs, config);
            for (id, (g, want)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g, want,
                    "session {id} diverged from standalone at shard_width={shard_width} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn burst_length_cannot_perturb_artifacts() {
    // A session's step sequence is the same whether the engine wakes it
    // in one maximal burst or many 64 ms slices.
    let specs = standard_mix(5, 77);
    let coarse =
        fleet_artifacts(&specs, FleetConfig { shard_width: 4, workers: Some(1), burst_ms: 4096 });
    let fine =
        fleet_artifacts(&specs, FleetConfig { shard_width: 4, workers: Some(2), burst_ms: 64 });
    assert_eq!(coarse, fine);
}

#[test]
fn both_fusion_rules_hold_the_equivalence() {
    // Same guarded/defended mix under AllThree (paper default) and
    // AnyOne fusion: the fleet must track the scalar loop under either
    // alarm-combination rule.
    for fusion in [FusionRule::AllThree, FusionRule::AnyOne] {
        let mut specs =
            vec![SessionSpec::guarded(501), SessionSpec::defended(502), SessionSpec::held(503)];
        for spec in &mut specs {
            let setup = spec.config.detector.as_mut().expect("guarded specs carry a detector");
            setup.config.fusion = fusion;
        }
        let reference: Vec<String> = specs
            .iter()
            .enumerate()
            .map(|(id, spec)| run_standalone(spec, id as u64).to_json())
            .collect();
        for shard_width in [1usize, 4] {
            let got = fleet_artifacts(
                &specs,
                FleetConfig { shard_width, workers: Some(2), burst_ms: 200 },
            );
            assert_eq!(got, reference, "fusion {fusion:?} diverged at shard_width={shard_width}");
        }
    }
}

#[test]
fn artifacts_are_independent_of_cohabitants() {
    // The same spec admitted into two very different fleets (different
    // sizes, different neighbors) yields byte-identical artifacts: a
    // session cannot observe who it is co-scheduled with.
    let probe = SessionSpec::defended(9091).with_session_ms(900).with_start_ms(2);
    let solo = fleet_artifacts(std::slice::from_ref(&probe), FleetConfig::default());

    let mut crowd = standard_mix(7, 60_000);
    crowd.insert(3, probe.clone());
    let mut fleet =
        FleetEngine::new(FleetConfig { shard_width: 3, workers: Some(2), burst_ms: 128 });
    let mut probe_id = None;
    for (i, spec) in crowd.iter().enumerate() {
        let id = fleet.admit(spec.clone());
        if i == 3 {
            probe_id = Some(id);
        }
    }
    let report = fleet.run();
    let probe_id = probe_id.expect("probe admitted");
    let in_crowd =
        report.artifacts.iter().find(|a| a.id == probe_id).expect("probe retired").to_json();
    // The artifact embeds the fleet id; rewrite the solo one to match.
    let expected = solo[0].replacen("\"id\": 0", &format!("\"id\": {probe_id}"), 1);
    assert_eq!(in_crowd, expected);
}
