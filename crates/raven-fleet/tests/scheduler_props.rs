//! Scheduler properties under proptest:
//!
//! * virtual time never goes backwards and frontier ids come out
//!   ascending, for any scheduled set;
//! * the pop sequence is invariant under permuted admission order —
//!   execution order is a pure function of the scheduled set;
//! * lane contention defers but never starves: every monitor session
//!   completes every phase, with its exact assessment budget;
//! * mid-run retirement never perturbs siblings: with no contention,
//!   each co-scheduled session's totals equal its scalar twin
//!   (a fresh `DynamicDetector` per phase), regardless of who else is
//!   admitted, retired, or recycled onto neighboring lanes.

use proptest::prelude::*;
use raven_detect::{DetectionThresholds, DetectorConfig, DynamicDetector};
use raven_fleet::{FleetMonitor, MonitorConfig, MonitorSession, SessionTotals, WakeQueue};
use raven_kinematics::NUM_AXES;
use simbus::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

fn mid_thresholds() -> DetectionThresholds {
    DetectionThresholds {
        motor_accel: [200.0; NUM_AXES],
        motor_vel: [20.0; NUM_AXES],
        joint_vel: [2.0; NUM_AXES],
    }
}

fn monitor_config(width: usize) -> MonitorConfig {
    MonitorConfig { width, detector: DetectorConfig::default(), thresholds: mid_thresholds() }
}

/// The scalar reference for one monitor session: a fresh armed
/// `DynamicDetector` per active phase over the same synthetic
/// trajectory — computed without any fleet machinery.
fn scalar_totals(monitor: &FleetMonitor, session: &MonitorSession) -> SessionTotals {
    let mut expected = SessionTotals::default();
    for _phase in 0..session.phases {
        let mut det = DynamicDetector::new(
            monitor.shared_arm(),
            monitor.session_model(session),
            DetectorConfig::default(),
        );
        det.arm_with(mid_thresholds());
        for cycle in 0..session.active_ms {
            det.sync_measurement(monitor.measurement(session, cycle));
            det.assess(&FleetMonitor::command(session, cycle));
        }
        expected.assessments += det.assessments();
        expected.alarms += det.alarms();
        expected.phases_run += 1;
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn virtual_time_never_goes_backwards(
        wakes in prop::collection::vec((0u64..5_000, 0u64..64), 1..40),
    ) {
        let mut q = WakeQueue::new();
        for &(t_ms, id) in &wakes {
            q.schedule(ms(t_ms), id);
        }
        let mut popped = 0usize;
        let mut last: Option<SimTime> = None;
        while let Some((t, ids)) = q.pop_frontier() {
            if let Some(prev) = last {
                prop_assert!(t > prev, "frontier moved backwards: {t:?} after {prev:?}");
            }
            for w in ids.windows(2) {
                prop_assert!(w[0] <= w[1], "frontier ids not ascending: {ids:?}");
            }
            prop_assert_eq!(q.frontier(), t);
            popped += ids.len();
            last = Some(t);
        }
        prop_assert_eq!(popped, wakes.len());
    }

    #[test]
    fn pop_order_is_invariant_under_permuted_admission(
        wakes in prop::collection::vec((0u64..2_000, 0u64..64), 1..32),
        stride_pick in 0usize..6,
    ) {
        // Admit the same set in two orders: as generated, and walked by
        // a stride coprime to the length (a deterministic permutation
        // family — no RNG involved).
        let n = wakes.len();
        let stride = [1usize, 3, 5, 7, 11, 13][stride_pick];
        let stride = if n % stride == 0 { 1 } else { stride };

        let mut a = WakeQueue::new();
        for &(t_ms, id) in &wakes {
            a.schedule(ms(t_ms), id);
        }
        let mut b = WakeQueue::new();
        for k in 0..n {
            let (t_ms, id) = wakes[(k * stride) % n];
            b.schedule(ms(t_ms), id);
        }

        loop {
            let (fa, fb) = (a.pop_frontier(), b.pop_frontier());
            prop_assert_eq!(&fa, &fb);
            if fa.is_none() {
                break;
            }
        }
    }

    #[test]
    fn contended_monitor_sessions_never_starve(
        sessions in prop::collection::vec(
            (0u64..1_000, 0u64..40, 1u64..20, 0u64..12, 1u32..4),
            1..7,
        ),
        width in 1usize..4,
    ) {
        let specs: Vec<MonitorSession> = sessions
            .iter()
            .map(|&(seed, start_ms, active_ms, idle_ms, phases)| MonitorSession {
                seed,
                start_ms,
                active_ms,
                idle_ms,
                phases,
            })
            .collect();
        let mut monitor = FleetMonitor::new(monitor_config(width), specs.clone());
        let report = monitor.run();
        for (i, s) in specs.iter().enumerate() {
            let t = &report.totals[i];
            prop_assert!(t.phases_run == s.phases, "session {i} starved");
            prop_assert!(
                t.assessments == s.phases as u64 * s.active_ms,
                "session {i} lost assessments to contention"
            );
        }
        prop_assert!(report.peak_active <= width);
    }

    #[test]
    fn retirement_never_perturbs_siblings(
        sessions in prop::collection::vec(
            (0u64..1_000, 0u64..30, 1u64..20, 0u64..10, 0u32..3),
            2..5,
        ),
    ) {
        // Width ≥ session count: no deferrals, so every total must
        // equal the scalar twin exactly — siblings being admitted onto
        // and retired from neighboring lanes at arbitrary interleavings
        // (including pure-idle sessions that never take a lane) is
        // invisible to each session's own arithmetic.
        let specs: Vec<MonitorSession> = sessions
            .iter()
            .map(|&(seed, start_ms, active_ms, idle_ms, phases)| MonitorSession {
                seed,
                start_ms,
                active_ms,
                idle_ms,
                phases,
            })
            .collect();
        let mut monitor = FleetMonitor::new(monitor_config(specs.len()), specs.clone());
        let report = monitor.run();
        prop_assert!(report.deferrals == 0, "width >= n must never defer");
        for (i, s) in specs.iter().enumerate() {
            let expected = scalar_totals(&monitor, s);
            prop_assert!(report.totals[i] == expected, "sibling perturbed session {i}");
        }
    }
}
