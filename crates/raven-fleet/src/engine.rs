//! The rig-plane fleet engine: N full sessions over a virtual-time
//! wake queue, dispatched in shards through the campaign executor.
//!
//! # Determinism doctrine
//!
//! * Each scheduler round pops the earliest wake-queue frontier —
//!   every session due at that virtual instant, ids ascending — and
//!   chunks it into shard groups of [`FleetConfig::shard_width`].
//! * Shards run as independent jobs on [`run_sweep`], whose run-order
//!   merge slots results by shard index regardless of worker count or
//!   scheduling.
//! * A session burst touches only that session's `Simulation`, so its
//!   artifact is a pure function of its [`SessionSpec`] — grouping
//!   cannot perturb it. Fleet-level metrics count only quantities that
//!   are themselves grouping-invariant (admissions, wakeups,
//!   retirements).
//!
//! Together: the merged [`FleetReport`] is bit-identical for any shard
//! width or worker count, and every session artifact is bit-identical
//! to [`run_standalone`](crate::session::run_standalone) of its spec —
//! the contract `tests/fleet_equiv.rs` pins.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use raven_core::{run_sweep, ExecutorConfig, Simulation};
use simbus::obs::{names, spans, Event, EventKind, EventLog, Metrics, Severity};
use simbus::span::SpanHandle;
use simbus::{SimDuration, SimTime};

use crate::queue::WakeQueue;
use crate::session::{build_session, SessionArtifact, SessionSpec};

/// How the fleet engine schedules and dispatches.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Ready sessions per shard group (≥ 1). Output is bit-identical
    /// for any value; wider shards amortize dispatch overhead.
    pub shard_width: usize,
    /// Worker threads for shard dispatch. `None` resolves like the
    /// campaign executor (`$RAVEN_WORKERS`, else available
    /// parallelism); output is bit-identical for any value.
    pub workers: Option<usize>,
    /// Teleoperation cycles a session advances per wake (≥ 1). Output
    /// is bit-identical for any value: a session's step sequence is
    /// the same whether run in one maximal burst or many small ones.
    pub burst_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { shard_width: 4, workers: Some(1), burst_ms: 256 }
    }
}

/// One admitted session's slot between wakes.
#[derive(Debug)]
struct Slot {
    spec: SessionSpec,
    /// Built and booted lazily at the first wake.
    sim: Option<Box<Simulation>>,
    booted: bool,
    /// Teleoperation cycles executed so far (the `ticks` the outcome
    /// reports — boot cycles excluded, matching `run_session`).
    ran: u64,
}

/// A shard's take-once cell: the dispatch closure moves the group out
/// under the executor, which only hands each index to one worker.
type ShardCell = Mutex<Option<Vec<(u64, Slot)>>>;

/// The merged output of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// One artifact per admitted session, in session-id order.
    pub artifacts: Vec<SessionArtifact>,
    /// Fleet-level scheduling events (`fleet.admitted`, `fleet.retired`).
    pub events: Vec<Event>,
    /// Fleet-level counters (`fleet.sessions`, `fleet.wakeups`,
    /// `fleet.retirements`) — shard-invariant by construction.
    pub metrics: Metrics,
    /// Scheduler rounds executed.
    pub rounds: u64,
}

/// The virtual-time session multiplexer. See the module doc for the
/// determinism contract.
///
/// # Example
///
/// ```
/// use raven_fleet::{FleetConfig, FleetEngine, SessionSpec};
///
/// let mut fleet = FleetEngine::new(FleetConfig::default());
/// fleet.admit(SessionSpec::clean(11).with_session_ms(40));
/// fleet.admit(SessionSpec::clean(12).with_session_ms(40));
/// let report = fleet.run();
/// assert_eq!(report.artifacts.len(), 2);
/// assert!(report.artifacts.iter().all(|a| a.booted));
/// ```
#[derive(Debug)]
pub struct FleetEngine {
    config: FleetConfig,
    queue: WakeQueue,
    slots: BTreeMap<u64, Slot>,
    next_id: u64,
    events: EventLog,
    metrics: Metrics,
    spans: SpanHandle,
}

impl FleetEngine {
    /// An empty fleet.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard width or burst length.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.shard_width >= 1, "shard width must be at least 1");
        assert!(config.burst_ms >= 1, "burst length must be at least 1 ms");
        FleetEngine {
            config,
            queue: WakeQueue::new(),
            slots: BTreeMap::new(),
            next_id: 0,
            events: EventLog::new(EventLog::DEFAULT_CAPACITY),
            metrics: Metrics::new(),
            spans: SpanHandle::disabled(),
        }
    }

    /// Starts recording fleet scheduling spans (`span.fleet.round`,
    /// `span.fleet.shard`) for Chrome-trace export.
    pub fn enable_span_recorder(&mut self) {
        self.spans = SpanHandle::recording();
    }

    /// The fleet's span handle (for trace export after a run).
    pub fn spans(&self) -> &SpanHandle {
        &self.spans
    }

    /// Admits a session; returns its fleet id (admission order). The
    /// session first wakes at its spec's `start_ms`.
    pub fn admit(&mut self, spec: SessionSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let at = SimTime::ZERO + SimDuration::from_millis(spec.start_ms);
        self.queue.schedule(at, id);
        self.events.push(
            Event::new(at, "fleet", Severity::Info, EventKind::FleetAdmitted)
                .with("session", id)
                .with("wake_ms", spec.start_ms),
        );
        self.metrics.inc(names::FLEET_SESSIONS);
        self.slots.insert(id, Slot { spec, sim: None, booted: false, ran: 0 });
        id
    }

    /// Sessions admitted and not yet retired.
    pub fn pending(&self) -> usize {
        self.slots.len()
    }

    /// Runs every admitted session to its horizon (or halt) and merges
    /// the per-session artifacts in id order.
    pub fn run(&mut self) -> FleetReport {
        let mut artifacts: BTreeMap<u64, SessionArtifact> = BTreeMap::new();
        let mut rounds = 0u64;
        while let Some((now, ready)) = self.queue.pop_frontier() {
            rounds += 1;
            self.spans.set_time(now);
            let _round = self.spans.begin(spans::FLEET_ROUND);
            self.metrics.add(names::FLEET_WAKEUPS, ready.len() as u64);

            // Move the ready sessions out of their slots, grouped into
            // shards in frontier (ascending-id) order.
            let mut groups: Vec<Vec<(u64, Slot)>> = Vec::new();
            for ids in ready.chunks(self.config.shard_width) {
                groups.push(
                    ids.iter()
                        .map(|&id| (id, self.slots.remove(&id).expect("ready session has a slot")))
                        .collect(),
                );
            }
            let shard_cells: Vec<ShardCell> =
                groups.into_iter().map(|g| Mutex::new(Some(g))).collect();

            // Dispatch shards through the campaign executor: results
            // come back in shard order for any worker count.
            let exec =
                ExecutorConfig { workers: self.config.workers, progress: false, trace: None };
            let burst_ms = self.config.burst_ms;
            let sweep = run_sweep(
                "fleet.round",
                shard_cells.len(),
                &exec,
                |i| i as u64,
                |i, _| {
                    let group = shard_cells[i].lock().take().expect("shard dispatched once");
                    group
                        .into_iter()
                        .map(|(id, slot)| advance_session(id, slot, burst_ms))
                        .collect::<Vec<_>>()
                },
            );

            // Run-order merge: shard index order, within-shard frontier
            // order — i.e. exactly ascending-id order per round.
            for group in sweep.expect_all("fleet round") {
                let _shard = self.spans.begin(spans::FLEET_SHARD);
                for (id, slot, artifact) in group {
                    match artifact {
                        Some(artifact) => {
                            self.events.push(
                                Event::new(now, "fleet", Severity::Info, EventKind::FleetRetired)
                                    .with("session", id)
                                    .with("ticks", slot.ran)
                                    .with("halted", artifact.outcome.estop.is_some()),
                            );
                            self.metrics.inc(names::FLEET_RETIREMENTS);
                            artifacts.insert(id, artifact);
                        }
                        None => {
                            self.queue
                                .schedule(now + SimDuration::from_millis(self.config.burst_ms), id);
                            self.slots.insert(id, slot);
                        }
                    }
                }
            }
        }
        self.spans.finish();
        FleetReport {
            artifacts: artifacts.into_values().collect(),
            events: self.events.snapshot(),
            metrics: self.metrics.clone(),
            rounds,
        }
    }
}

/// One session wake: boot lazily on the first wake, then advance one
/// bounded burst. Returns the artifact once the session reaches its
/// horizon or halts. Runs on a worker thread; touches nothing but this
/// session's own state.
fn advance_session(id: u64, mut slot: Slot, burst_ms: u64) -> (u64, Slot, Option<SessionArtifact>) {
    if slot.sim.is_none() {
        let mut sim = Box::new(build_session(&slot.spec));
        slot.booted = sim.boot_expecting_failure();
        slot.sim = Some(sim);
    }
    let sim = slot.sim.as_mut().expect("session built above");
    let horizon = slot.spec.config.session_ms;
    let cycles = burst_ms.min(horizon - slot.ran);
    slot.ran += sim.run_session_burst(cycles);
    let done = slot.ran >= horizon || sim.halted();
    let artifact = done.then(|| {
        let outcome = sim.session_outcome(slot.ran);
        SessionArtifact::collect(id, &slot.spec, slot.booted, outcome, sim)
    });
    (id, slot, artifact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_standalone;

    #[test]
    fn fleet_of_one_matches_standalone() {
        let spec = SessionSpec::attacked(21).with_session_ms(600);
        let mut fleet = FleetEngine::new(FleetConfig::default());
        let id = fleet.admit(spec.clone());
        let report = fleet.run();
        assert_eq!(report.artifacts.len(), 1);
        assert_eq!(report.artifacts[0].to_json(), run_standalone(&spec, id).to_json());
        assert_eq!(report.metrics.counter(names::FLEET_SESSIONS), 1);
        assert_eq!(report.metrics.counter(names::FLEET_RETIREMENTS), 1);
        assert_eq!(report.events.len(), 2);
    }

    #[test]
    fn staggered_admissions_round_count_follows_bursts() {
        let mut fleet = FleetEngine::new(FleetConfig { burst_ms: 100, ..FleetConfig::default() });
        fleet.admit(SessionSpec::clean(5).with_session_ms(250));
        fleet.admit(SessionSpec::clean(6).with_session_ms(250).with_start_ms(50));
        let report = fleet.run();
        assert_eq!(report.artifacts.len(), 2);
        // 250 ms at 100 ms bursts = 3 wakes per session, admissions
        // offset so no round is shared: 6 rounds.
        assert_eq!(report.rounds, 6);
        assert_eq!(report.metrics.counter(names::FLEET_WAKEUPS), 6);
    }
}
