//! Fleet engine: a virtual-time event-queue session multiplexer for the
//! raven-guard reproduction.
//!
//! The paper validates its dynamic-model detector one teleoperation
//! session at a time; a production deployment serves *fleets* of
//! concurrent sessions. This crate scales the validated loop without
//! changing its semantics, on two planes:
//!
//! * **Rig plane** — [`FleetEngine`] admits N fully simulated sessions
//!   (each a [`raven_core::Simulation`] with its own seed, scenario,
//!   attack, and chaos schedule), parks them in a virtual-time
//!   [`WakeQueue`], and advances the ready frontier in bounded bursts,
//!   sharded into groups and dispatched over the campaign executor's
//!   deterministic run-order merge. Every session's artifact (outcome,
//!   event log, metrics, incident report) is **bit-identical** to the
//!   same spec run standalone through `Simulation::run_session`, for
//!   any shard width or worker count — pinned by
//!   `tests/fleet_equiv.rs`.
//! * **Monitor plane** — [`FleetMonitor`] multiplexes thousands of
//!   telemetry streams over one M-lane
//!   [`raven_detect::BatchDetector`], recycling lanes as sessions turn
//!   active and idle. Idle (Pedal-Up) sessions hold no lane, schedule
//!   their next wake instead of being polled, and consume **zero**
//!   detector assessments — the scaling claim the 10k-session soak
//!   test executes.
//!
//! Determinism doctrine: the wake queue orders strictly by
//! `(wake_time_ns, session_id)`, fleet-level metrics are restricted to
//! shard-invariant counters, and per-session work never reads sibling
//! state — so the merged fleet output is a pure function of the
//! admitted specs.

#![forbid(unsafe_code)]

pub mod engine;
pub mod monitor;
pub mod queue;
pub mod session;

pub use engine::{FleetConfig, FleetEngine, FleetReport};
pub use monitor::{FleetMonitor, MonitorConfig, MonitorReport, MonitorSession, SessionTotals};
pub use queue::WakeQueue;
pub use session::{fleet_thresholds, run_standalone, standard_mix, SessionArtifact, SessionSpec};
