//! Fleet session specifications and per-session artifacts.
//!
//! A [`SessionSpec`] is everything needed to reconstruct one
//! teleoperation session deterministically: the full
//! [`SimConfig`] plus the attack and chaos schedules installed before
//! boot. [`run_standalone`] executes a spec through the plain
//! `Simulation::run_session` loop — the scalar reference the fleet
//! engine's output is byte-compared against.

use std::sync::OnceLock;

use raven_core::training::{train_thresholds, TrainingConfig};
use raven_core::{
    AttackSetup, DetectorSetup, IncidentReport, SessionOutcome, SimConfig, Simulation,
};
use raven_detect::{DetectionThresholds, DetectorConfig, Mitigation};
use serde::Serialize;
use simbus::obs::{Event, Metrics};
use simbus::ChaosConfig;

/// One admitted session: the complete deterministic recipe.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Scenario name (recorded in the artifact).
    pub name: String,
    /// Full session configuration (seed, workload, detector, horizon).
    pub config: SimConfig,
    /// Attack installed before boot (`None` for clean sessions).
    pub attack: AttackSetup,
    /// Chaos schedule installed before boot (off ⇒ nothing scheduled).
    pub chaos: ChaosConfig,
    /// Virtual time (ms) at which the fleet engine first wakes the
    /// session. Staggered admissions exercise the wake queue; the
    /// session's own artifact is independent of this value.
    pub start_ms: u64,
}

impl SessionSpec {
    /// A clean undefended session.
    pub fn clean(seed: u64) -> Self {
        SessionSpec {
            name: "clean".into(),
            config: SimConfig { session_ms: 1_200, ..SimConfig::standard(seed) },
            attack: AttackSetup::None,
            chaos: ChaosConfig::off(),
            start_ms: 0,
        }
    }

    /// A clean session guarded by the armed detector.
    pub fn guarded(seed: u64) -> Self {
        let mut spec = SessionSpec::clean(seed);
        spec.name = "guarded".into();
        spec.config.detector = Some(armed_setup(Mitigation::EStop));
        spec
    }

    /// The paper's hot Scenario-B injection on an undefended robot.
    pub fn attacked(seed: u64) -> Self {
        let mut spec = SessionSpec::clean(seed);
        spec.name = "attacked".into();
        spec.attack = hot_attack();
        spec.config.session_ms = 1_600;
        spec
    }

    /// The hot injection against the armed guard (E-STOP mitigation).
    pub fn defended(seed: u64) -> Self {
        let mut spec = SessionSpec::attacked(seed);
        spec.name = "defended".into();
        spec.config.detector = Some(armed_setup(Mitigation::EStop));
        spec
    }

    /// The hot injection against block-and-hold mitigation.
    pub fn held(seed: u64) -> Self {
        let mut spec = SessionSpec::attacked(seed);
        spec.name = "held".into();
        spec.config.detector = Some(armed_setup(Mitigation::BlockAndHold));
        spec
    }

    /// Replaces the teleoperation horizon (builder style).
    #[must_use]
    pub fn with_session_ms(mut self, session_ms: u64) -> Self {
        self.config.session_ms = session_ms;
        self
    }

    /// Replaces the admission time (builder style).
    #[must_use]
    pub fn with_start_ms(mut self, start_ms: u64) -> Self {
        self.start_ms = start_ms;
        self
    }

    /// Replaces the chaos schedule (builder style).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }
}

/// The paper's standard hot torque injection (Scenario B, 30 000 DAC
/// counts on the shoulder channel).
fn hot_attack() -> AttackSetup {
    AttackSetup::ScenarioB {
        dac_delta: 30_000,
        channel: 0,
        delay_packets: 400,
        duration_packets: 256,
    }
}

fn armed_setup(mitigation: Mitigation) -> DetectorSetup {
    DetectorSetup {
        config: DetectorConfig { mitigation, ..DetectorConfig::default() },
        model_perturbation: 0.02,
        thresholds: Some(fleet_thresholds()),
    }
}

/// Thresholds shared by every guarded fleet session, trained once per
/// process with the reduced fault-free protocol (fixed seed, 25 %
/// safety margin — the same recipe `raven-verify` arms its suites
/// with, so a fleet session and a verification session of the same
/// spec run the identical detector).
pub fn fleet_thresholds() -> DetectionThresholds {
    static THRESHOLDS: OnceLock<DetectionThresholds> = OnceLock::new();
    *THRESHOLDS.get_or_init(|| {
        train_thresholds(&TrainingConfig { runs: 8, ..TrainingConfig::quick(7) })
            .thresholds
            .scaled(1.25)
    })
}

/// A deterministic mixed-scenario fleet: clean, guarded, attacked,
/// defended, and block-and-hold sessions with distinct seeds and
/// staggered horizons/admissions. Used by the `raven-sim fleet` CLI
/// and the equivalence/soak suites.
pub fn standard_mix(n: usize, base_seed: u64) -> Vec<SessionSpec> {
    (0..n)
        .map(|i| {
            // Plain arithmetic seed spread (no RNG stream involved):
            // distinct, deterministic, admission-order independent.
            let seed = base_seed.wrapping_add(7919 * i as u64 + 1);
            let spec = match i % 5 {
                0 => SessionSpec::clean(seed),
                1 => SessionSpec::guarded(seed),
                2 => SessionSpec::attacked(seed),
                3 => SessionSpec::defended(seed),
                _ => SessionSpec::held(seed),
            };
            spec.with_session_ms(800 + 400 * (i % 3) as u64).with_start_ms(3 * (i % 7) as u64)
        })
        .collect()
}

/// Everything one fleet session produced — serializable so equivalence
/// is a byte comparison. Identical in content to running the spec
/// standalone through [`run_standalone`] with the same `id`.
#[derive(Debug, Clone, Serialize)]
pub struct SessionArtifact {
    /// Fleet session id (admission order).
    pub id: u64,
    /// Spec name.
    pub name: String,
    /// Root seed.
    pub seed: u64,
    /// Whether boot reached Pedal Up.
    pub booted: bool,
    /// Session ground truth (`ticks` counts teleoperation cycles).
    pub outcome: SessionOutcome,
    /// The session's event ring at end, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring.
    pub events_dropped: u64,
    /// The session's metrics registry at end.
    pub metrics: Metrics,
    /// The flight recorder's dump, if it tripped.
    pub incident: Option<IncidentReport>,
}

impl SessionArtifact {
    /// Snapshots a finished session. `outcome` is passed in (rather
    /// than derived here) because the engine and the standalone path
    /// produce it through different call sites that must agree.
    pub fn collect(
        id: u64,
        spec: &SessionSpec,
        booted: bool,
        outcome: SessionOutcome,
        sim: &Simulation,
    ) -> Self {
        let (events, events_dropped) = {
            let obs = sim.observer().lock();
            (obs.events.snapshot(), obs.events.dropped())
        };
        SessionArtifact {
            id,
            name: spec.name.clone(),
            seed: spec.config.seed,
            booted,
            outcome,
            events,
            events_dropped,
            metrics: sim.metrics(),
            incident: sim.incident().cloned(),
        }
    }

    /// Serializes the artifact (the byte-compare equivalence record).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (all field types are
    /// serializable, so this indicates a bug).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("artifact serializes")
    }
}

/// Builds a session from its spec: construct, install the attack and
/// the chaos schedule. Shared by the engine and the standalone path so
/// both run literally the same setup sequence.
pub(crate) fn build_session(spec: &SessionSpec) -> Simulation {
    let mut sim = Simulation::new(spec.config.clone());
    if spec.attack.is_attack() {
        sim.install_attack(&spec.attack);
    }
    if !spec.chaos.is_off() {
        sim.install_chaos(&spec.chaos);
    }
    sim
}

/// Runs one spec standalone through `Simulation::run_session` — the
/// scalar reference loop the fleet engine must reproduce bit for bit.
pub fn run_standalone(spec: &SessionSpec, id: u64) -> SessionArtifact {
    let mut sim = build_session(spec);
    let booted = sim.boot_expecting_failure();
    let outcome = sim.run_session();
    SessionArtifact::collect(id, spec, booted, outcome, &sim)
}
