//! The monitor-plane multiplexer: thousands of telemetry streams over
//! one M-lane [`BatchDetector`].
//!
//! Where the rig-plane [`crate::FleetEngine`] simulates every session
//! in full, the monitor models the deployment where per-rig telemetry
//! arrives over the network and only the *detector* runs centrally.
//! Sessions alternate active (Pedal-Down, assessed every cycle) and
//! idle (Pedal-Up) phases:
//!
//! * An **active** session holds one detector lane; each cycle it
//!   syncs its measurement and is assessed through
//!   [`BatchDetector::assess_lanes_masked`].
//! * An **idle** session holds *no* lane and sits in the
//!   [`WakeQueue`] until its next active phase — it is never polled
//!   and consumes **zero** detector assessments. When every session is
//!   idle, virtual time jumps straight to the next wake.
//!
//! Lane recycling: activation takes the lowest free lane
//! ([`BatchDetector::admit_lane`] — a fresh detector epoch), phase end
//! releases it ([`BatchDetector::retire_lane`]). If no lane is free,
//! the activation re-arms one cycle later (a *deferral*) — bounded,
//! because active phases are finite, and deterministic, because
//! deferred sessions re-enter the queue in `(time, id)` order. Per
//! the kernel's lane-isolation contract, admissions and retirements
//! never perturb co-scheduled lanes — pinned by
//! `tests/scheduler_props.rs` and the `fleet-isolation` chaos oracle.

use std::collections::{BTreeMap, BTreeSet};

use raven_detect::{BatchDetector, DetectionThresholds, DetectorConfig};
use raven_dynamics::{PlantParams, RtModel};
use raven_kinematics::{ArmConfig, JointState, MotorState, NUM_AXES};
use serde::Serialize;
use simbus::{SimDuration, SimTime};

use crate::queue::WakeQueue;

/// One monitored session's duty schedule.
#[derive(Debug, Clone, Copy)]
pub struct MonitorSession {
    /// Seed: perturbs the session's estimator model and phases its
    /// synthetic trajectory.
    pub seed: u64,
    /// Virtual time (ms) of the first activation.
    pub start_ms: u64,
    /// Length of each active (Pedal-Down) phase in ms.
    pub active_ms: u64,
    /// Idle (Pedal-Up) gap between active phases in ms.
    pub idle_ms: u64,
    /// Number of active phases; `0` means the session stays idle for
    /// its whole lifetime and never acquires a lane.
    pub phases: u32,
}

impl MonitorSession {
    /// A fully idle session: admitted, never active.
    pub fn idle(seed: u64) -> Self {
        MonitorSession { seed, start_ms: 0, active_ms: 0, idle_ms: 0, phases: 0 }
    }
}

/// What one session consumed over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SessionTotals {
    /// Armed detector assessments across all active phases.
    pub assessments: u64,
    /// Alarms raised across all active phases.
    pub alarms: u64,
    /// Active phases completed.
    pub phases_run: u32,
    /// Activations deferred because no lane was free.
    pub deferrals: u64,
}

/// Monitor dimensions and detector arming.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Detector lanes — the maximum concurrently active sessions
    /// served without deferral.
    pub width: usize,
    /// Detector configuration shared by every lane.
    pub detector: DetectorConfig,
    /// Thresholds every admitted lane is armed with.
    pub thresholds: DetectionThresholds,
}

/// The monitor run's summary.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorReport {
    /// Per-session totals, in session-id order.
    pub totals: Vec<SessionTotals>,
    /// Detector cycles executed (masked batch calls).
    pub cycles: u64,
    /// Peak concurrently active sessions.
    pub peak_active: usize,
    /// Total deferred activations.
    pub deferrals: u64,
}

/// A session currently holding a lane.
#[derive(Debug)]
struct ActivePhase {
    lane: usize,
    remaining_ms: u64,
    /// Cycle index within the phase (drives the trajectory).
    cycle: u64,
}

/// The monitor-plane multiplexer. See the module doc.
#[derive(Debug)]
pub struct FleetMonitor {
    config: MonitorConfig,
    sessions: Vec<MonitorSession>,
    detector: BatchDetector,
    shared_params: PlantParams,
}

impl FleetMonitor {
    /// Builds a monitor of `config.width` lanes over `sessions`.
    ///
    /// # Panics
    ///
    /// Panics on zero width or an empty session list.
    pub fn new(config: MonitorConfig, sessions: Vec<MonitorSession>) -> Self {
        assert!(config.width >= 1, "monitor needs at least one lane");
        assert!(!sessions.is_empty(), "monitor needs at least one session");
        let params = PlantParams::raven_ii();
        let arm = ArmConfig::builder().coupling(params.coupling()).build();
        let model = RtModel::new(params);
        let arms: Vec<ArmConfig> = vec![arm; config.width];
        let models: Vec<RtModel> = vec![model; config.width];
        let detector = BatchDetector::from_models(&arms, &models, config.detector);
        FleetMonitor { config, sessions, detector, shared_params: params }
    }

    /// The estimator model a session's lane is admitted with.
    pub fn session_model(&self, session: &MonitorSession) -> RtModel {
        RtModel::new(self.shared_params.perturbed(session.seed, 0.02))
    }

    /// The arm config every lane shares.
    pub fn shared_arm(&self) -> ArmConfig {
        ArmConfig::builder().coupling(self.shared_params.coupling()).build()
    }

    /// The synthetic measurement stream: a smooth per-session sinusoid
    /// (phase-offset by seed) standing in for real rig telemetry.
    pub fn measurement(&self, session: &MonitorSession, cycle: u64) -> MotorState {
        synth_measurement(&self.shared_params, session.seed, cycle)
    }

    /// The candidate DAC command the guard assesses each cycle.
    pub fn command(session: &MonitorSession, cycle: u64) -> [i16; NUM_AXES] {
        synth_command(session.seed, cycle)
    }

    /// Runs every session through its duty schedule; returns the
    /// per-session totals (id order) and scheduling telemetry.
    pub fn run(&mut self) -> MonitorReport {
        let mut queue = WakeQueue::new();
        let mut totals = vec![SessionTotals::default(); self.sessions.len()];
        let mut phases_left: Vec<u32> = self.sessions.iter().map(|s| s.phases).collect();
        for (id, s) in self.sessions.iter().enumerate() {
            if s.phases > 0 && s.active_ms > 0 {
                queue.schedule(ms(s.start_ms), id as u64);
            }
        }

        let mut free: BTreeSet<usize> = (0..self.config.width).collect();
        let mut active: BTreeMap<u64, ActivePhase> = BTreeMap::new();
        let mut dacs: Vec<Option<[i16; NUM_AXES]>> = vec![None; self.config.width];
        let mut now = SimTime::ZERO;
        let mut cycles = 0u64;
        let mut peak_active = 0usize;
        let mut deferrals = 0u64;

        loop {
            if active.is_empty() {
                // Everything is idle: jump virtual time to the next
                // wake — the queue replaces per-tick polling.
                let Some((t, ids)) = queue.pop_frontier() else { break };
                now = t;
                self.admit_ready(
                    ids,
                    now,
                    &mut queue,
                    &mut free,
                    &mut active,
                    &mut totals,
                    &mut deferrals,
                );
                continue;
            }
            // Admit any sessions due at the current instant.
            while queue.next_wake() == Some(now) {
                let (_, ids) = queue.pop_frontier().expect("peeked wake");
                self.admit_ready(
                    ids,
                    now,
                    &mut queue,
                    &mut free,
                    &mut active,
                    &mut totals,
                    &mut deferrals,
                );
            }
            peak_active = peak_active.max(active.len());

            // One detector cycle over the masked batch.
            dacs.iter_mut().for_each(|d| *d = None);
            for (&id, phase) in active.iter() {
                let session = self.sessions[id as usize];
                self.detector.sync_lane(
                    phase.lane,
                    synth_measurement(&self.shared_params, session.seed, phase.cycle),
                );
                dacs[phase.lane] = Some(synth_command(session.seed, phase.cycle));
            }
            self.detector.assess_lanes_masked(&dacs);
            cycles += 1;
            now += SimDuration::from_millis(1);

            // Advance phases; release lanes that completed.
            let mut finished: Vec<u64> = Vec::new();
            for (&id, phase) in active.iter_mut() {
                phase.cycle += 1;
                phase.remaining_ms -= 1;
                if phase.remaining_ms == 0 {
                    finished.push(id);
                }
            }
            for id in finished {
                let phase = active.remove(&id).expect("finishing session is active");
                let t = &mut totals[id as usize];
                t.assessments += self.detector.lane_assessments(phase.lane);
                t.alarms += self.detector.lane_alarms(phase.lane);
                t.phases_run += 1;
                self.detector.retire_lane(phase.lane);
                free.insert(phase.lane);
                let session = self.sessions[id as usize];
                phases_left[id as usize] -= 1;
                if phases_left[id as usize] > 0 {
                    queue.schedule(now + SimDuration::from_millis(session.idle_ms), id);
                }
            }
        }

        MonitorReport { totals, cycles, peak_active, deferrals }
    }

    /// Activates woken sessions in `(time, id)` order, taking the
    /// lowest free lane each; defers by one cycle when none is free.
    #[allow(clippy::too_many_arguments)]
    fn admit_ready(
        &mut self,
        ids: Vec<u64>,
        now: SimTime,
        queue: &mut WakeQueue,
        free: &mut BTreeSet<usize>,
        active: &mut BTreeMap<u64, ActivePhase>,
        totals: &mut [SessionTotals],
        deferrals: &mut u64,
    ) {
        for id in ids {
            let session = self.sessions[id as usize];
            match free.iter().next().copied() {
                Some(lane) => {
                    free.remove(&lane);
                    self.detector.admit_lane(
                        lane,
                        self.shared_arm(),
                        &self.session_model(&session),
                        Some(self.config.thresholds),
                    );
                    active.insert(
                        id,
                        ActivePhase { lane, remaining_ms: session.active_ms, cycle: 0 },
                    );
                }
                None => {
                    totals[id as usize].deferrals += 1;
                    *deferrals += 1;
                    queue.schedule(now + SimDuration::from_millis(1), id);
                }
            }
        }
    }
}

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// Smooth seeded sinusoid measurement (the bench/session trajectory
/// family), phase-offset per session via plain seed arithmetic.
fn synth_measurement(params: &PlantParams, seed: u64, cycle: u64) -> MotorState {
    let t = cycle as f64 * 1e-3;
    let phase = (seed % 628) as f64 * 0.01;
    let j = JointState::new(
        0.1 * (2.0 * t + phase).sin(),
        1.4 + 0.08 * (1.5 * t + phase).cos(),
        0.25 + 0.01 * (t + phase).sin(),
    );
    params.coupling().joints_to_motors(&j)
}

/// Seeded candidate command matched to the measurement's gentle pace.
fn synth_command(seed: u64, cycle: u64) -> [i16; NUM_AXES] {
    let base = 150 + (seed % 200) as i16;
    let swing = ((cycle % 64) as i16) - 32;
    [base + swing, -100, 80]
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_detect::DynamicDetector;

    fn mid_thresholds() -> DetectionThresholds {
        DetectionThresholds {
            motor_accel: [200.0; NUM_AXES],
            motor_vel: [20.0; NUM_AXES],
            joint_vel: [2.0; NUM_AXES],
        }
    }

    fn config(width: usize) -> MonitorConfig {
        MonitorConfig { width, detector: DetectorConfig::default(), thresholds: mid_thresholds() }
    }

    #[test]
    fn duty_cycled_session_matches_scalar_detector_per_phase() {
        // One session, two active phases: totals must equal a scalar
        // DynamicDetector re-created at each phase (a lane admission is
        // a fresh detector epoch).
        let session =
            MonitorSession { seed: 42, start_ms: 5, active_ms: 40, idle_ms: 100, phases: 2 };
        let mut monitor = FleetMonitor::new(config(3), vec![session]);
        let model = monitor.session_model(&session);
        let arm = monitor.shared_arm();
        let report = monitor.run();

        let mut expected = SessionTotals::default();
        for _phase in 0..2 {
            let mut det =
                DynamicDetector::new(arm.clone(), model.clone(), DetectorConfig::default());
            det.arm_with(mid_thresholds());
            for cycle in 0..40 {
                det.sync_measurement(monitor.measurement(&session, cycle));
                det.assess(&FleetMonitor::command(&session, cycle));
            }
            expected.assessments += det.assessments();
            expected.alarms += det.alarms();
            expected.phases_run += 1;
        }
        assert_eq!(report.totals[0], expected);
        assert_eq!(report.cycles, 80, "only active spans consume detector cycles");
    }

    #[test]
    fn idle_sessions_consume_zero_assessments_and_zero_cycles() {
        let mut sessions: Vec<MonitorSession> = (0..50).map(MonitorSession::idle).collect();
        sessions.push(MonitorSession {
            seed: 99,
            start_ms: 0,
            active_ms: 25,
            idle_ms: 0,
            phases: 1,
        });
        let mut monitor = FleetMonitor::new(config(2), sessions);
        let report = monitor.run();
        for t in &report.totals[..50] {
            assert_eq!(t.assessments, 0);
            assert_eq!(t.phases_run, 0);
        }
        assert_eq!(report.totals[50].assessments, 25);
        assert_eq!(report.cycles, 25, "idle sessions must not add cycles");
        assert_eq!(report.peak_active, 1);
    }

    #[test]
    fn lane_contention_defers_but_never_starves() {
        // 4 sessions over 2 lanes, all due at t=0: the late ids defer
        // until a lane frees, and everyone completes every phase.
        let sessions: Vec<MonitorSession> = (0..4)
            .map(|i| MonitorSession { seed: i, start_ms: 0, active_ms: 10, idle_ms: 5, phases: 3 })
            .collect();
        let mut monitor = FleetMonitor::new(config(2), sessions);
        let report = monitor.run();
        assert!(report.deferrals > 0, "contention must actually occur");
        for t in &report.totals {
            assert_eq!(t.phases_run, 3);
            assert_eq!(t.assessments, 30);
        }
        assert_eq!(report.peak_active, 2);
    }
}
