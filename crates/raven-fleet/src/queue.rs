//! The virtual-time wake queue: sessions schedule their next wake
//! instead of being polled every tick.
//!
//! A `BinaryHeap` keyed by `(wake_time_ns, session_id)` (min-first via
//! `Reverse`) makes the pop order a pure function of the scheduled
//! set: ties on time break by ascending session id, so permuting the
//! *admission* order of a fleet cannot permute its *execution* order —
//! one of the scheduler properties pinned under proptest in
//! `tests/scheduler_props.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use simbus::SimTime;

/// Deterministic virtual-time wake queue.
///
/// # Example
///
/// ```
/// use raven_fleet::WakeQueue;
/// use simbus::SimTime;
///
/// let mut q = WakeQueue::new();
/// q.schedule(SimTime::from_nanos(2_000_000), 7);
/// q.schedule(SimTime::from_nanos(1_000_000), 9);
/// q.schedule(SimTime::from_nanos(1_000_000), 3);
/// // The 1 ms frontier pops first, ids ascending.
/// assert_eq!(q.pop_frontier(), Some((SimTime::from_nanos(1_000_000), vec![3, 9])));
/// assert_eq!(q.pop_frontier(), Some((SimTime::from_nanos(2_000_000), vec![7])));
/// assert_eq!(q.pop_frontier(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WakeQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Latest popped frontier: virtual time may never move backwards.
    frontier_ns: u64,
}

impl WakeQueue {
    /// An empty queue at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules session `id` to wake at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped frontier — a
    /// wake in the past would make virtual time run backwards.
    pub fn schedule(&mut self, at: SimTime, id: u64) {
        let ns = at.as_nanos();
        assert!(
            ns >= self.frontier_ns,
            "wake at {ns} ns is before the current frontier ({} ns)",
            self.frontier_ns
        );
        self.heap.push(Reverse((ns, id)));
    }

    /// Pops the earliest frontier: the minimum wake time together with
    /// *every* session scheduled at exactly that time, ids ascending.
    /// Advances the frontier; returns `None` when the queue is empty.
    pub fn pop_frontier(&mut self) -> Option<(SimTime, Vec<u64>)> {
        let Reverse((t, first)) = self.heap.pop()?;
        self.frontier_ns = t;
        let mut ids = vec![first];
        while let Some(&Reverse((tn, id))) = self.heap.peek() {
            if tn != t {
                break;
            }
            self.heap.pop();
            ids.push(id);
        }
        (SimTime::from_nanos(t), ids).into()
    }

    /// The next wake time, if any, without popping.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((t, _))| SimTime::from_nanos(t))
    }

    /// The latest popped frontier (virtual "now").
    pub fn frontier(&self) -> SimTime {
        SimTime::from_nanos(self.frontier_ns)
    }

    /// Scheduled wakes outstanding.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1_000_000)
    }

    #[test]
    fn pops_by_time_then_id() {
        let mut q = WakeQueue::new();
        for &(t, id) in &[(5, 2u64), (1, 9), (5, 1), (1, 4), (3, 0)] {
            q.schedule(ms(t), id);
        }
        assert_eq!(q.pop_frontier(), Some((ms(1), vec![4, 9])));
        assert_eq!(q.pop_frontier(), Some((ms(3), vec![0])));
        assert_eq!(q.pop_frontier(), Some((ms(5), vec![1, 2])));
        assert!(q.is_empty());
    }

    #[test]
    fn rescheduling_at_the_frontier_is_allowed() {
        let mut q = WakeQueue::new();
        q.schedule(ms(2), 1);
        let (t, _) = q.pop_frontier().unwrap();
        // A session may re-arm at the very instant it woke (e.g. a
        // deferred lane acquisition) — just never earlier.
        q.schedule(t, 1);
        assert_eq!(q.pop_frontier(), Some((ms(2), vec![1])));
    }

    #[test]
    #[should_panic(expected = "before the current frontier")]
    fn scheduling_in_the_past_panics() {
        let mut q = WakeQueue::new();
        q.schedule(ms(5), 1);
        q.pop_frontier();
        q.schedule(ms(4), 2);
    }
}
