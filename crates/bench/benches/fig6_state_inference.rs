//! Regenerates Figure 6: Byte 0 state staircases across nine runs.
//!
//! ```sh
//! cargo bench -p bench --bench fig6_state_inference
//! ```

use raven_core::experiments::run_fig6;

fn main() {
    let result = run_fig6(5);
    print!("{}", result.render());
    bench::save_json("fig6_state_inference", &result);
    assert_eq!(result.correct_runs(), 9, "all nine state machines must be recoverable");
}
