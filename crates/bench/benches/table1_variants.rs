//! Regenerates Table I: attack variants vs observed impact.
//!
//! ```sh
//! cargo bench -p bench --bench table1_variants
//! ```

use raven_core::experiments::run_table1;

fn main() {
    let started = std::time::Instant::now();
    let result = run_table1(31);
    print!("{}", result.render());
    println!(
        "{}/{} variants reproduce the paper's impact class ({:.1} s)",
        result.matching_rows(),
        result.rows.len(),
        started.elapsed().as_secs_f64()
    );
    bench::save_json("table1_variants", &result);
    assert_eq!(result.matching_rows(), result.rows.len(), "all Table I variants must reproduce");
}
