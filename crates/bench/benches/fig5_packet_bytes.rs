//! Regenerates Figure 5: byte-by-byte analysis of one captured session.
//!
//! ```sh
//! cargo bench -p bench --bench fig5_packet_bytes
//! ```

use raven_core::experiments::run_fig5;

fn main() {
    let session_ms = if bench::quick_mode() { 3_000 } else { 8_000 };
    let result = run_fig5(3, session_ms);
    print!("{}", result.render());
    bench::save_json("fig5_packet_bytes", &result);

    assert_eq!(result.byte0_values.len(), 8, "Byte 0 must take 8 values (Fig. 5(c))");
    assert_eq!(result.watchdog_mask, Some(0x10), "bit 4 is the watchdog");
    assert_eq!(result.byte0_values_masked.len(), 4, "4 states after masking");
}
