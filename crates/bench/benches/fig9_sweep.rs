//! Regenerates Figure 9: P(adverse impact), P(detect | dynamic model), and
//! P(detect | RAVEN) over the injected-error-value × activation-period grid
//! (scenario B, ≥20 repetitions per cell).
//!
//! ```sh
//! cargo bench -p bench --bench fig9_sweep
//! ```

use raven_core::experiments::{run_fig9, Fig9Config};

fn main() {
    let started = std::time::Instant::now();
    let config =
        if bench::quick_mode() { Fig9Config::quick(21) } else { Fig9Config::paper_scale(21) };
    let result = run_fig9(&config);
    print!("{}", result.render());
    println!(
        "\nreproduced claims: probabilities grow with value and duration; small/short \
         injections are absorbed by the PID loop (paper §IV.B); the model's detection \
         curve dominates RAVEN's; RAVEN's detection sits at or below the adverse-impact \
         probability. elapsed: {:.1} s",
        started.elapsed().as_secs_f64()
    );
    bench::save_json("fig9_sweep", &result);

    // Heatmap SVGs, one per panel.
    let mut values: Vec<i16> = result.cells.iter().map(|c| c.value).collect();
    values.sort_unstable();
    values.dedup();
    let mut durations: Vec<u64> = result.cells.iter().map(|c| c.duration_ms).collect();
    durations.sort_unstable();
    durations.dedup();
    let cols: Vec<String> = durations.iter().map(|d| format!("{d}ms")).collect();
    std::fs::create_dir_all(bench::results_dir()).expect("results dir");
    for (name, title, pick) in [
        ("fig9_adverse", "P(adverse impact)", 0usize),
        ("fig9_model", "P(detect | dynamic model)", 1),
        ("fig9_raven", "P(detect | RAVEN)", 2),
    ] {
        let rows: Vec<(String, Vec<f64>)> = values
            .iter()
            .map(|v| {
                let row = durations
                    .iter()
                    .map(|d| {
                        let c = result.cell(*v, *d).expect("complete grid");
                        [c.p_adverse, c.p_model, c.p_raven][pick]
                    })
                    .collect();
                (format!("{v}"), row)
            })
            .collect();
        let svg = raven_core::viz::heatmap(title, &cols, &rows);
        let path = bench::results_dir().join(format!("{name}.svg"));
        std::fs::write(&path, svg).expect("write heatmap");
        println!("[saved {}]", path.display());
    }

    // Shape checks on the corners.
    let mut values: Vec<i16> = result.cells.iter().map(|c| c.value).collect();
    values.sort_unstable();
    let mut durations: Vec<u64> = result.cells.iter().map(|c| c.duration_ms).collect();
    durations.sort_unstable();
    let (vmin, vmax) = (values[0], *values.last().unwrap());
    let (dmin, dmax) = (durations[0], *durations.last().unwrap());
    let small_short = result.cell(vmin, dmin).unwrap();
    let big_long = result.cell(vmax, dmax).unwrap();
    assert!(small_short.p_adverse <= 0.1, "small/short must be harmless");
    assert!(big_long.p_adverse >= 0.5, "big/long must hurt");
    assert!(big_long.p_model >= big_long.p_raven, "model dominates RAVEN");

    // Stage-timing sidecar: one representative full session, profiled.
    // Wall-clock output, so it goes through save_profile (gitignored), never
    // into the deterministic fig9_sweep.json record above.
    let mut sim = raven_core::Simulation::new(raven_core::SimConfig::standard(21));
    sim.boot();
    let _ = sim.run_session();
    bench::save_profile("fig9_sweep", sim.profiler());
}
