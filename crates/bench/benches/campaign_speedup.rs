//! Before/after wall-clock for the parallel campaign engine: times the
//! Table IV and Fig. 9 sweeps serially (`--workers 1`) and on a worker
//! pool, verifies the outputs are byte-identical, and records the timings
//! in `BENCH_campaign.json` (workspace root, mirrored under `results/`).
//!
//! ```sh
//! cargo bench -p bench --bench campaign_speedup
//! ```
//!
//! The ≥2× speedup gate only applies where it is physically attainable:
//! on hosts with fewer than 4 cores the record still captures the honest
//! numbers, but the assertion is skipped (a CPU-bound sweep cannot beat
//! serial on a single core).

use std::time::Instant;

use raven_core::experiments::{run_fig9_with, run_table4_with, Fig9Config, Table4Config};
use raven_core::training::TrainingConfig;
use raven_core::ExecutorConfig;
use serde::Serialize;

#[derive(Serialize)]
struct SweepTiming {
    sweep: String,
    runs: usize,
    serial_s: f64,
    parallel_s: f64,
    parallel_workers: usize,
    speedup: f64,
    byte_identical: bool,
}

#[derive(Serialize)]
struct CampaignBench {
    available_parallelism: usize,
    parallel_workers: usize,
    quick_mode: bool,
    sweeps: Vec<SweepTiming>,
    note: String,
}

fn time_sweep<T: Serialize>(
    sweep: &str,
    runs: usize,
    workers: usize,
    run: impl Fn(&ExecutorConfig) -> T,
) -> SweepTiming {
    let t0 = Instant::now();
    let serial = run(&ExecutorConfig::serial());
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run(&ExecutorConfig::with_workers(workers));
    let parallel_s = t1.elapsed().as_secs_f64();

    let byte_identical = serde_json::to_string(&serial).expect("serialize serial")
        == serde_json::to_string(&parallel).expect("serialize parallel");
    let timing = SweepTiming {
        sweep: sweep.to_string(),
        runs,
        serial_s,
        parallel_s,
        parallel_workers: workers,
        speedup: serial_s / parallel_s.max(1e-9),
        byte_identical,
    };
    println!(
        "{sweep}: serial {serial_s:.2} s, {workers} workers {parallel_s:.2} s \
         ({:.2}x, byte-identical: {byte_identical})",
        timing.speedup
    );
    timing
}

fn main() {
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    // Measure at ≥4 workers even on narrower hosts so the record always
    // shows the N≥4 configuration the acceptance gate is defined at.
    let workers = cores.max(4);
    let quick = bench::quick_mode();

    let (t4_config, f9_config) = if quick {
        (Table4Config::quick(9), Fig9Config::quick(9))
    } else {
        // Bench scale: large enough that pool overhead is noise (hundreds
        // of multi-second-session runs), small enough to finish in minutes.
        (
            Table4Config {
                scenario_a_runs: 120,
                scenario_b_runs: 120,
                training: TrainingConfig { runs: 24, ..TrainingConfig::quick(9) },
                ..Table4Config::quick(9)
            },
            Fig9Config {
                values: vec![2_000, 16_000, 30_000],
                durations_ms: vec![4, 32, 256],
                repetitions: 8,
                ..Fig9Config::quick(9)
            },
        )
    };

    let t4_runs = (t4_config.scenario_a_runs + t4_config.scenario_b_runs) as usize;
    let f9_runs =
        f9_config.values.len() * f9_config.durations_ms.len() * f9_config.repetitions as usize;

    let sweeps = vec![
        time_sweep("table4", t4_runs, workers, |exec| run_table4_with(&t4_config, exec)),
        time_sweep("fig9", f9_runs, workers, |exec| run_fig9_with(&f9_config, exec)),
    ];

    for t in &sweeps {
        assert!(t.byte_identical, "{}: parallel output diverged from serial", t.sweep);
        if cores >= 4 {
            assert!(
                t.speedup >= 2.0,
                "{}: expected >=2x speedup at {} workers on {} cores, got {:.2}x",
                t.sweep,
                t.parallel_workers,
                cores,
                t.speedup
            );
        }
    }

    let record = CampaignBench {
        available_parallelism: cores,
        parallel_workers: workers,
        quick_mode: quick,
        sweeps,
        note: if cores >= 4 {
            "speedup gate (>=2x at N>=4) enforced".to_string()
        } else {
            format!(
                "host exposes {cores} core(s): timings recorded but the >=2x \
                 gate is only enforced on hosts with >=4 cores"
            )
        },
    };

    bench::save_json("BENCH_campaign", &record);
    // The record is also pinned at the workspace root, where the issue
    // tracking this engine expects it.
    let root = {
        let mut d = bench::results_dir();
        d.pop();
        d
    };
    let path = root.join("BENCH_campaign.json");
    std::fs::write(&path, serde_json::to_string_pretty(&record).expect("serialize record"))
        .expect("write BENCH_campaign.json");
    println!("[saved {}]", path.display());
}
