//! Criterion micro-benchmarks of the real-time kernels whose cost the paper
//! reports or depends on:
//!
//! * one dynamic-model step, Euler and RK4 (Fig. 8: 0.011 / 0.032 ms on the
//!   authors' testbed);
//! * one bare/logged/injected channel write (Table II);
//! * FK + IK round (the kinematic chain of Fig. 2);
//! * one full plant control-period step (the simulation's hot loop).
//!
//! ```sh
//! cargo bench -p bench --bench micro_kernels
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use raven_attack::{capture_log, ActivationWindow, Corruption, InjectionWrapper, LoggingWrapper};
use raven_detect::{DetectorConfig, DynamicDetector, Mitigation};
use raven_dynamics::estimator::RtModelConfig;
use raven_dynamics::{PlantParams, RavenPlant, RtModel};
use raven_hw::{RobotState, UsbChannel, UsbCommandPacket};
use raven_kinematics::{ArmConfig, JointState};
use raven_math::ode::Method;
use simbus::SimTime;
use std::hint::black_box;

fn bench_model_step(c: &mut Criterion) {
    let params = PlantParams::raven_ii();
    let state = params.rest_state(JointState::new(0.2, 1.3, 0.3));
    let mut group = c.benchmark_group("model_step");
    for (name, method) in [("euler", Method::Euler), ("rk4", Method::Rk4)] {
        let model = RtModel::with_config(params, RtModelConfig { method, step_size: 1e-3 });
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.predict(black_box(&state), &[1200, -800, 400])))
        });
    }
    group.finish();
}

fn bench_channel_write(c: &mut Criterion) {
    let pkt = UsbCommandPacket {
        state: RobotState::PedalDown,
        watchdog: true,
        dac: [1200, -800, 400, 0, 0, 0, 0, 0],
    };
    let bytes = pkt.encode().to_vec();
    let mut group = c.benchmark_group("channel_write");

    let mut bare = UsbChannel::new();
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(bare.write(bytes.clone(), SimTime::ZERO)))
    });

    let mut logged = UsbChannel::new();
    logged.install(Box::new(LoggingWrapper::new(capture_log())));
    group.bench_function("logging_wrapper", |b| {
        b.iter(|| black_box(logged.write(bytes.clone(), SimTime::ZERO)))
    });

    let mut injected = UsbChannel::new();
    injected.install(Box::new(InjectionWrapper::pedal_down_trigger(
        Corruption::AddDacWord { channel: 0, delta: 50 },
        ActivationWindow::immediate_persistent(),
    )));
    group.bench_function("injection_wrapper", |b| {
        b.iter(|| black_box(injected.write(bytes.clone(), SimTime::ZERO)))
    });
    group.finish();
}

fn bench_kinematics(c: &mut Criterion) {
    let arm = ArmConfig::raven_ii_left();
    let joints = JointState::new(0.3, 1.4, 0.28);
    let pos = arm.forward(&joints).position;
    c.bench_function("fk_ik_round", |b| {
        b.iter(|| {
            let fk = arm.forward(black_box(&joints));
            let ik = arm.inverse(black_box(pos)).expect("reachable");
            black_box((fk, ik))
        })
    });
}

fn bench_guard_assess(c: &mut Criterion) {
    // The full guard decision — measurement sync + one-step prediction +
    // feature extraction + threshold fusion — must fit far inside the 1 ms
    // control budget (the paper's §IV real-time requirement).
    let params = PlantParams::raven_ii();
    let arm = ArmConfig::builder().coupling(params.coupling()).build();
    let model = RtModel::new(params.perturbed(1, 0.02));
    let mut det = DynamicDetector::new(
        arm,
        model,
        DetectorConfig { mitigation: Mitigation::Observe, ..DetectorConfig::default() },
    );
    // Train on synthetic gentle motion, then arm.
    let coupling = params.coupling();
    for k in 0..2_000u64 {
        let t = k as f64 * 1e-3;
        let j = JointState::new(0.1 * (2.0 * t).sin(), 1.4 + 0.08 * t.cos(), 0.25);
        det.sync_measurement(coupling.joints_to_motors(&j));
        det.assess(&[200, 150, -100]);
    }
    det.arm().expect("bench warm-up fed fault-free samples");
    let mpos = coupling.joints_to_motors(&JointState::new(0.05, 1.38, 0.26));
    c.bench_function("guard_sync_and_assess", |b| {
        b.iter(|| {
            det.sync_measurement(black_box(mpos));
            black_box(det.assess(black_box(&[1200, -800, 400])))
        })
    });
}

fn bench_plant_step(c: &mut Criterion) {
    let params = PlantParams::raven_ii();
    let mut plant = RavenPlant::new(params);
    plant.release_brakes();
    c.bench_function("plant_control_period", |b| {
        b.iter(|| {
            plant.step_control_period(black_box(&[0.02, -0.01, 0.005]));
            black_box(plant.state().joint_pos())
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_model_step, bench_channel_write, bench_kinematics, bench_guard_assess, bench_plant_step
);
criterion_main!(kernels);
