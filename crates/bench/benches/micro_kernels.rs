//! Criterion micro-benchmarks of the real-time kernels whose cost the paper
//! reports or depends on:
//!
//! * one dynamic-model step, Euler and RK4 (Fig. 8: 0.011 / 0.032 ms on the
//!   authors' testbed);
//! * one bare/logged/injected channel write (Table II);
//! * FK + IK round (the kinematic chain of Fig. 2);
//! * one full plant control-period step (the simulation's hot loop);
//! * the scalar-vs-batched estimator+detector kernel at M ∈ {1, 8, 64, 256}
//!   sessions (the SoA fleet kernel in `raven_dynamics::batch` /
//!   `raven_detect::batch`), published as `BENCH_kernels.json` at the
//!   workspace root.
//!
//! ```sh
//! cargo bench -p bench --bench micro_kernels
//! ```

use criterion::{criterion_group, Criterion};
use raven_attack::{capture_log, ActivationWindow, Corruption, InjectionWrapper, LoggingWrapper};
use raven_detect::{BatchDetector, DetectorConfig, DynamicDetector, Mitigation};
use raven_dynamics::estimator::RtModelConfig;
use raven_dynamics::{PlantParams, RavenPlant, RtModel};
use raven_hw::{RobotState, UsbChannel, UsbCommandPacket};
use raven_kinematics::{ArmConfig, JointState, MotorState};
use raven_math::ode::Method;
use serde::Serialize;
use simbus::SimTime;
use std::hint::black_box;
use std::time::Instant;

fn bench_model_step(c: &mut Criterion) {
    let params = PlantParams::raven_ii();
    let state = params.rest_state(JointState::new(0.2, 1.3, 0.3));
    let mut group = c.benchmark_group("model_step");
    for (name, method) in [("euler", Method::Euler), ("rk4", Method::Rk4)] {
        let model = RtModel::with_config(params, RtModelConfig { method, step_size: 1e-3 });
        group.bench_function(name, |b| {
            b.iter(|| black_box(model.predict(black_box(&state), &[1200, -800, 400])))
        });
    }
    group.finish();
}

fn bench_channel_write(c: &mut Criterion) {
    let pkt = UsbCommandPacket {
        state: RobotState::PedalDown,
        watchdog: true,
        dac: [1200, -800, 400, 0, 0, 0, 0, 0],
    };
    let bytes = pkt.encode().to_vec();
    let mut group = c.benchmark_group("channel_write");

    let mut bare = UsbChannel::new();
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(bare.write(bytes.clone(), SimTime::ZERO)))
    });

    let mut logged = UsbChannel::new();
    logged.install(Box::new(LoggingWrapper::new(capture_log())));
    group.bench_function("logging_wrapper", |b| {
        b.iter(|| black_box(logged.write(bytes.clone(), SimTime::ZERO)))
    });

    let mut injected = UsbChannel::new();
    injected.install(Box::new(InjectionWrapper::pedal_down_trigger(
        Corruption::AddDacWord { channel: 0, delta: 50 },
        ActivationWindow::immediate_persistent(),
    )));
    group.bench_function("injection_wrapper", |b| {
        b.iter(|| black_box(injected.write(bytes.clone(), SimTime::ZERO)))
    });
    group.finish();
}

fn bench_kinematics(c: &mut Criterion) {
    let arm = ArmConfig::raven_ii_left();
    let joints = JointState::new(0.3, 1.4, 0.28);
    let pos = arm.forward(&joints).position;
    c.bench_function("fk_ik_round", |b| {
        b.iter(|| {
            let fk = arm.forward(black_box(&joints));
            let ik = arm.inverse(black_box(pos)).expect("reachable");
            black_box((fk, ik))
        })
    });
}

fn bench_guard_assess(c: &mut Criterion) {
    // The full guard decision — measurement sync + one-step prediction +
    // feature extraction + threshold fusion — must fit far inside the 1 ms
    // control budget (the paper's §IV real-time requirement).
    let params = PlantParams::raven_ii();
    let arm = ArmConfig::builder().coupling(params.coupling()).build();
    let model = RtModel::new(params.perturbed(1, 0.02));
    let mut det = DynamicDetector::new(
        arm,
        model,
        DetectorConfig { mitigation: Mitigation::Observe, ..DetectorConfig::default() },
    );
    // Train on synthetic gentle motion, then arm.
    let coupling = params.coupling();
    for k in 0..2_000u64 {
        let t = k as f64 * 1e-3;
        let j = JointState::new(0.1 * (2.0 * t).sin(), 1.4 + 0.08 * t.cos(), 0.25);
        det.sync_measurement(coupling.joints_to_motors(&j));
        det.assess(&[200, 150, -100]);
    }
    det.arm().expect("bench warm-up fed fault-free samples");
    let mpos = coupling.joints_to_motors(&JointState::new(0.05, 1.38, 0.26));
    c.bench_function("guard_sync_and_assess", |b| {
        b.iter(|| {
            det.sync_measurement(black_box(mpos));
            black_box(det.assess(black_box(&[1200, -800, 400])))
        })
    });
}

fn bench_plant_step(c: &mut Criterion) {
    let params = PlantParams::raven_ii();
    let mut plant = RavenPlant::new(params);
    plant.release_brakes();
    c.bench_function("plant_control_period", |b| {
        b.iter(|| {
            plant.step_control_period(black_box(&[0.02, -0.01, 0.005]));
            black_box(plant.state().joint_pos())
        })
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(30);
    targets = bench_model_step, bench_channel_write, bench_kinematics, bench_guard_assess, bench_plant_step
);

// ---------------------------------------------------------------------------
// Scalar vs batched estimator+detector kernel at fleet widths.

/// One (M, scalar, batch) comparison point. Costs are median wall-clock
/// nanoseconds per session-cycle (sync + assess, lookahead included).
#[derive(Serialize)]
struct ScalingPoint {
    sessions: usize,
    scalar_ns_per_session: f64,
    batch_ns_per_session: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct KernelsBench {
    quick_mode: bool,
    cycles_per_repeat: usize,
    repeats: usize,
    lookahead_steps: u32,
    points: Vec<ScalingPoint>,
    note: String,
}

/// Builds M detector sessions (perturbed per-lane models, shared learned
/// thresholds) plus a measurement trajectory exercising the armed path.
fn fleet(m: usize) -> (Vec<DynamicDetector>, BatchDetector, Vec<Vec<MotorState>>, [i16; 3]) {
    let base = PlantParams::raven_ii();
    let coupling = base.coupling();
    let config = DetectorConfig { mitigation: Mitigation::Observe, ..DetectorConfig::default() };

    // Train once on lane 0's model; every session arms with the same
    // thresholds (the batch never learns — training is a scalar campaign).
    let arm0 = ArmConfig::builder().coupling(base.coupling()).build();
    let mut trainer = DynamicDetector::new(arm0, RtModel::new(base.perturbed(1, 0.02)), config);
    for k in 0..2_000u64 {
        let t = k as f64 * 1e-3;
        let j = JointState::new(0.1 * (2.0 * t).sin(), 1.4 + 0.08 * t.cos(), 0.25);
        trainer.sync_measurement(coupling.joints_to_motors(&j));
        trainer.assess(&[200, 150, -100]);
    }
    trainer.arm().expect("bench warm-up fed fault-free samples");
    let thresholds = *trainer.thresholds().expect("armed");

    let arms: Vec<ArmConfig> =
        (0..m).map(|_| ArmConfig::builder().coupling(base.coupling()).build()).collect();
    let models: Vec<RtModel> =
        (0..m).map(|l| RtModel::new(base.perturbed(l as u64 + 1, 0.02))).collect();
    let mut scalars: Vec<DynamicDetector> = arms
        .iter()
        .zip(&models)
        .map(|(a, mo)| DynamicDetector::new(a.clone(), mo.clone(), config))
        .collect();
    let mut batch = BatchDetector::from_models(&arms, &models, config);
    for (l, s) in scalars.iter_mut().enumerate() {
        s.arm_with(thresholds);
        batch.arm_lane(l, thresholds);
    }

    // A short per-lane measurement trajectory, cycled during timing.
    let traj: Vec<Vec<MotorState>> = (0..m)
        .map(|l| {
            (0..16u64)
                .map(|k| {
                    let t = k as f64 * 1e-3;
                    let j = JointState::new(
                        0.1 * (2.0 * t).sin() + 0.005 * l as f64,
                        1.4 + 0.05 * (1.5 * t).cos(),
                        0.25,
                    );
                    coupling.joints_to_motors(&j)
                })
                .collect()
        })
        .collect();
    (scalars, batch, traj, [1200, -800, 400])
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    samples[samples.len() / 2]
}

fn bench_batch_scaling() {
    let quick = bench::quick_mode();
    let cycles = if quick { 64 } else { 512 };
    let repeats = if quick { 3 } else { 7 };
    let widths = [1usize, 8, 64, 256];
    let lookahead = DetectorConfig::default().lookahead_steps;

    println!("\n== estimator+detector kernel: scalar vs batched (SoA) ==");
    println!(
        "{:>8} {:>22} {:>22} {:>9}",
        "sessions", "scalar ns/session", "batch ns/session", "speedup"
    );

    let mut points = Vec::new();
    for &m in &widths {
        let (mut scalars, mut batch, traj, dac) = fleet(m);
        let dacs: Vec<[i16; 3]> = vec![dac; m];

        // Warm-up: touch every code path and let buffers reach steady state.
        for k in 0..8 {
            for (l, s) in scalars.iter_mut().enumerate() {
                s.sync_measurement(traj[l][k % traj[l].len()]);
                black_box(s.assess(&dac));
            }
            for l in 0..m {
                batch.sync_lane(l, traj[l][k % traj[l].len()]);
            }
            black_box(batch.assess_lanes(&dacs));
        }

        let mut scalar_ns = Vec::new();
        let mut batch_ns = Vec::new();
        for _ in 0..repeats {
            let t0 = Instant::now();
            for k in 0..cycles {
                for (l, s) in scalars.iter_mut().enumerate() {
                    s.sync_measurement(traj[l][k % 16]);
                    black_box(s.assess(&dac));
                }
            }
            scalar_ns.push(t0.elapsed().as_nanos() as f64 / (cycles * m) as f64);

            let t0 = Instant::now();
            for k in 0..cycles {
                for (l, lane_traj) in traj.iter().enumerate() {
                    batch.sync_lane(l, lane_traj[k % 16]);
                }
                black_box(batch.assess_lanes(&dacs));
            }
            batch_ns.push(t0.elapsed().as_nanos() as f64 / (cycles * m) as f64);
        }
        let scalar = median(&mut scalar_ns);
        let batched = median(&mut batch_ns);
        println!("{m:>8} {scalar:>22.1} {batched:>22.1} {:>8.2}x", scalar / batched);
        points.push(ScalingPoint {
            sessions: m,
            scalar_ns_per_session: scalar,
            batch_ns_per_session: batched,
            speedup: scalar / batched,
        });
    }

    // The tentpole's gate: amortizing M sessions over one SoA kernel must
    // beat the single-session scalar path per session-cycle.
    let scalar_m1 = points[0].scalar_ns_per_session;
    let batch_m64 = points.iter().find(|p| p.sessions == 64).expect("M=64 point");
    assert!(
        batch_m64.batch_ns_per_session < scalar_m1,
        "batched M=64 per-session cost ({:.1} ns) must be strictly below scalar M=1 ({:.1} ns)",
        batch_m64.batch_ns_per_session,
        scalar_m1
    );

    let record = KernelsBench {
        quick_mode: quick,
        cycles_per_repeat: cycles,
        repeats,
        lookahead_steps: lookahead,
        points,
        note: "per-session-cycle cost of measurement sync + armed assessment (lookahead \
               rollout included); batch lanes share one SoA integrator dispatch"
            .to_string(),
    };
    // Workspace root ONLY: results/ holds the manifest-pinned deterministic
    // artifacts, and wall-clock timings must never enter that set.
    let root = {
        let mut d = bench::results_dir();
        d.pop();
        d
    };
    let path = root.join("BENCH_kernels.json");
    std::fs::write(&path, serde_json::to_string_pretty(&record).expect("serialize record"))
        .expect("write BENCH_kernels.json");
    println!("[saved {}]", path.display());
}

fn main() {
    kernels();
    bench_batch_scaling();
}
