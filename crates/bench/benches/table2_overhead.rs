//! Regenerates Table II: performance overhead of the malicious system-call
//! wrappers (50,000 timed writes per configuration, as in the paper).
//!
//! ```sh
//! cargo bench -p bench --bench table2_overhead
//! ```

use raven_core::experiments::run_table2;

fn main() {
    let iters = if bench::quick_mode() { 5_000 } else { 50_000 };
    let result = run_table2(iters);
    print!("{}", result.render());
    println!(
        "paper (µs, on real hardware): baseline 1.3 | logging 20.0 | injection 3.6 — \
         absolute values differ (no kernel crossing here); the reproduced claim is the \
         ordering logging ≫ injection ≥ baseline, all ≪ the 1 ms cycle budget."
    );
    bench::save_json("table2_overhead", &result);

    let base = result.rows[0].mean_us;
    let logging = result.rows[1].mean_us;
    let injection = result.rows[2].mean_us;
    assert!(logging > injection && injection >= base, "overhead ordering must hold");
    assert!(logging < 1_000.0, "well under the 1 ms real-time budget");
}
