//! Fleet throughput: sessions/sec through the `raven-fleet`
//! multiplexers, published as `BENCH_fleet.json` at the workspace root.
//!
//! Two planes:
//!
//! * **monitor plane** — N ∈ {16, 256, 1 000, 10 000} sessions (90 %
//!   idle Pedal-Up, 10 % duty-cycled) multiplexed over a 64-lane
//!   `BatchDetector`. Idle sessions park in the wake queue and consume
//!   zero assessments, so cost tracks the *active* minority — the
//!   event-queue scaling claim, measured;
//! * **rig plane** — 16 fully simulated mixed-scenario sessions
//!   through `FleetEngine` (the bit-identical-to-scalar path), for a
//!   full-fidelity reference point.
//!
//! ```sh
//! cargo bench -p bench --bench fleet_throughput
//! ```

use raven_detect::{DetectionThresholds, DetectorConfig};
use raven_fleet::{
    fleet_thresholds, standard_mix, FleetConfig, FleetEngine, FleetMonitor, MonitorConfig,
    MonitorSession,
};
use raven_kinematics::NUM_AXES;
use serde::Serialize;
use std::time::Instant;

const WIDTH: usize = 64;
const IDLE_EVERY: usize = 10; // 1 in 10 active → 90 % idle.

#[derive(Serialize)]
struct MonitorPoint {
    sessions: usize,
    active_sessions: usize,
    width: usize,
    wall_ms: f64,
    sessions_per_sec: f64,
    detector_cycles: u64,
    assessments: u64,
    deferrals: u64,
}

#[derive(Serialize)]
struct RigPoint {
    sessions: usize,
    shard_width: usize,
    wall_ms: f64,
    sessions_per_sec: f64,
    rounds: u64,
}

#[derive(Serialize)]
struct FleetBench {
    quick_mode: bool,
    repeats: usize,
    idle_fraction: f64,
    monitor: Vec<MonitorPoint>,
    rig: RigPoint,
    note: String,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The soak-test population shape at size `n`: 90 % pure idle, the rest
/// on short staggered duty cycles.
fn population(n: usize) -> Vec<MonitorSession> {
    (0..n)
        .map(|i| {
            let seed = 0xF1EE7 ^ (i as u64).wrapping_mul(7919);
            if i % IDLE_EVERY == 0 {
                MonitorSession {
                    seed,
                    start_ms: (i % 977) as u64,
                    active_ms: 20 + (i % 4) as u64 * 10,
                    idle_ms: 40 + (i % 7) as u64 * 15,
                    phases: 2,
                }
            } else {
                MonitorSession::idle(seed)
            }
        })
        .collect()
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        width: WIDTH,
        detector: DetectorConfig::default(),
        thresholds: DetectionThresholds {
            motor_accel: [200.0; NUM_AXES],
            motor_vel: [20.0; NUM_AXES],
            joint_vel: [2.0; NUM_AXES],
        },
    }
}

fn main() {
    let quick = bench::quick_mode();
    let repeats = if quick { 2 } else { 5 };

    println!("fleet throughput ({} repeats, median):", repeats);
    println!("{:>10} {:>10} {:>12} {:>16}", "sessions", "active", "wall (ms)", "sessions/sec");

    let mut monitor_points = Vec::new();
    for &n in &[16usize, 256, 1_000, 10_000] {
        let sessions = population(n);
        let active = sessions.iter().filter(|s| s.phases > 0).count();
        let mut wall_ms = Vec::new();
        let mut last = None;
        for _ in 0..repeats {
            let mut monitor = FleetMonitor::new(monitor_config(), sessions.clone());
            let t0 = Instant::now();
            let report = monitor.run();
            wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            last = Some(report);
        }
        let report = last.expect("at least one repeat");
        let wall = median(&mut wall_ms);
        let rate = n as f64 / (wall / 1e3);
        println!("{n:>10} {active:>10} {wall:>12.2} {rate:>16.0}");
        monitor_points.push(MonitorPoint {
            sessions: n,
            active_sessions: active,
            width: WIDTH,
            wall_ms: wall,
            sessions_per_sec: rate,
            detector_cycles: report.cycles,
            assessments: report.totals.iter().map(|t| t.assessments).sum(),
            deferrals: report.deferrals,
        });
    }

    // Rig plane: 16 full simulations through the wake queue. Train the
    // shared thresholds outside the timed region (OnceLock, once per
    // process — a real fleet trains once at deployment, not per run).
    let _ = fleet_thresholds();
    let rig_n = 16usize;
    let mut wall_ms = Vec::new();
    let mut rounds = 0u64;
    for _ in 0..repeats {
        let mut fleet =
            FleetEngine::new(FleetConfig { shard_width: 4, workers: None, burst_ms: 256 });
        for spec in standard_mix(rig_n, 9000) {
            fleet.admit(spec);
        }
        let t0 = Instant::now();
        let report = fleet.run();
        wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        rounds = report.rounds;
        assert_eq!(report.artifacts.len(), rig_n, "every rig session must retire");
    }
    let wall = median(&mut wall_ms);
    let rig = RigPoint {
        sessions: rig_n,
        shard_width: 4,
        wall_ms: wall,
        sessions_per_sec: rig_n as f64 / (wall / 1e3),
        rounds,
    };
    println!(
        "rig plane: {} full sessions in {:.1} ms ({:.1} sessions/sec, {} rounds)",
        rig_n, rig.wall_ms, rig.sessions_per_sec, rig.rounds
    );

    // The scaling gate: 10k mostly-idle sessions must clear at a higher
    // sessions/sec rate than 1k — per-session cost must *fall* as the
    // idle share's zero-cost parking dominates, which only holds if the
    // wake queue really skips them.
    let p1k = monitor_points.iter().find(|p| p.sessions == 1_000).expect("1k point");
    let p10k = monitor_points.iter().find(|p| p.sessions == 10_000).expect("10k point");
    assert!(
        p10k.sessions_per_sec > p1k.sessions_per_sec * 0.8,
        "10k sessions/sec ({:.0}) collapsed vs 1k ({:.0}) — idle sessions are being polled",
        p10k.sessions_per_sec,
        p1k.sessions_per_sec
    );

    let record = FleetBench {
        quick_mode: quick,
        repeats,
        idle_fraction: 1.0 - 1.0 / IDLE_EVERY as f64,
        monitor: monitor_points,
        rig,
        note: "monitor plane: duty-cycled sessions over a 64-lane masked batch detector; \
               idle sessions park in the wake queue (zero assessments). rig plane: full \
               Simulation sessions via FleetEngine (bit-identical to the scalar loop)"
            .to_string(),
    };
    // Workspace root ONLY: results/ holds the manifest-pinned deterministic
    // artifacts, and wall-clock timings must never enter that set.
    let root = {
        let mut d = bench::results_dir();
        d.pop();
        d
    };
    let path = root.join("BENCH_fleet.json");
    std::fs::write(&path, serde_json::to_string_pretty(&record).expect("serialize record"))
        .expect("write BENCH_fleet.json");
    println!("[saved {}]", path.display());
}
