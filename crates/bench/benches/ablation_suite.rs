//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! alarm fusion, mitigation policy, and the hardened-board counterfactual.
//!
//! ```sh
//! cargo bench -p bench --bench ablation_suite
//! ```

use raven_core::experiments::{
    run_bitw_study, run_fusion_ablation, run_hardened_board, run_lookahead_ablation,
    run_mitigation_ablation, run_network_study,
};

fn main() {
    let (fusion_runs, mitigation_runs) = if bench::quick_mode() { (12, 6) } else { (80, 20) };

    let fusion = run_fusion_ablation(41, fusion_runs);
    print!("{}", fusion.render());
    bench::save_json("ablation_fusion", &fusion);

    let mitigation = run_mitigation_ablation(43, mitigation_runs);
    print!("\n{}", mitigation.render());
    bench::save_json("ablation_mitigation", &mitigation);

    let hardened = run_hardened_board(45);
    print!("\n{}", hardened.render());
    bench::save_json("ablation_hardened_board", &hardened);

    let bitw = run_bitw_study(47);
    print!("\n{}", bitw.render());
    bench::save_json("ablation_bitw", &bitw);

    let lookahead = run_lookahead_ablation(49, if bench::quick_mode() { 9 } else { 30 });
    print!("\n{}", lookahead.render());
    bench::save_json("ablation_lookahead", &lookahead);

    let network = run_network_study(53);
    print!("\n{}", network.render());
    bench::save_json("study_network", &network);

    assert!(fusion.rows[0].fpr <= fusion.rows[1].fpr, "fusion reduces false alarms");
    assert!(
        mitigation.rows[1].survived_rate >= mitigation.rows[2].survived_rate,
        "hold preserves availability at least as well as E-STOP"
    );
    assert!(!hardened.b_adverse && hardened.a_still_effective);
    assert!(
        bitw.rows[1].adverse && !bitw.rows[2].adverse,
        "wire placement useless, host placement degrades the attack to DoS"
    );
}
