//! Regenerates Figure 8: dynamic-model validation — RK4 vs Euler time/step
//! and motor/joint trajectory errors over 10 paired runs.
//!
//! ```sh
//! cargo bench -p bench --bench fig8_model_validation
//! ```

use raven_core::experiments::run_fig8;

fn main() {
    let (runs, session_ms) = if bench::quick_mode() { (2, 2_000) } else { (10, 5_000) };
    let result = run_fig8(42, runs, session_ms, 0.02);
    print!("{}", result.render());
    println!(
        "paper: RK4 0.032 ms/step, Euler 0.011 ms/step; jpos errors ~1–2% of motion. \
         Reproduced claim: Euler is markedly cheaper with comparable error, both \
         within the 1 ms budget."
    );
    bench::save_json("fig8_model_validation", &result);

    // The plotted half of Fig. 8: model vs robot joint trajectories.
    let mk = |f: fn(&raven_core::experiments::fig8::OverlayPoint) -> (f64, f64),
              label: &'static str,
              color: &'static str| raven_core::viz::Series {
        label,
        color,
        points: result.overlay.iter().map(f).collect(),
    };
    let svg = raven_core::viz::line_chart(
        "Fig. 8 overlay: joint 2 (elbow) — robot vs Euler model",
        "time (ms)",
        "jpos2 (rad)",
        &[
            mk(|p| (p.t_ms, p.truth_jpos[1]), "robot", "#c0392b"),
            mk(|p| (p.t_ms, p.model_jpos[1]), "model (Euler)", "#2980b9"),
        ],
    );
    let path = bench::results_dir().join("fig8_overlay.svg");
    std::fs::create_dir_all(bench::results_dir()).expect("results dir");
    std::fs::write(&path, svg).expect("write overlay svg");
    println!("[saved {}]", path.display());

    let euler = result.row("Euler").expect("euler row");
    let rk4 = result.row("Runge").expect("rk4 row");
    assert!(euler.avg_time_ms_per_step < rk4.avg_time_ms_per_step);
    assert!(rk4.avg_time_ms_per_step < 1.0, "inside the control budget");
}
