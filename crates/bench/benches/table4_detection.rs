//! Regenerates Table IV: detection performance (ACC/TPR/FPR/F1) of the
//! dynamic-model detector vs the stock RAVEN mechanisms, scenarios A and B,
//! plus the alarm-fusion and threshold-percentile ablations called out in
//! DESIGN.md §5.
//!
//! ```sh
//! cargo bench -p bench --bench table4_detection
//! ```

use raven_core::experiments::{run_table4, Table4Config};
use raven_core::training::TrainingConfig;

fn main() {
    let started = std::time::Instant::now();
    let config = if bench::quick_mode() {
        Table4Config::quick(9)
    } else {
        // Paper scale: 1,925 scenario-A runs, 1,361 scenario-B runs,
        // thresholds from 600 fault-free runs.
        Table4Config::paper_scale(9)
    };
    let result = run_table4(&config);
    print!("{}", result.render());
    println!(
        "paper: A — model 88.0/89.8/12.4/74.8, RAVEN 84.6/53.3/7.7/57.8; \
         B — model 92.0/99.8/11.8/89.1, RAVEN 90.7/81.0/4.6/85.1 (ACC/TPR/FPR/F1 %)"
    );
    println!("elapsed: {:.1} s", started.elapsed().as_secs_f64());
    bench::save_json("table4_detection", &result);

    // Ablation: threshold percentile sensitivity (DESIGN.md §5.3) on a
    // reduced grid.
    println!("\nABLATION: threshold percentile band (scenario B, reduced grid)");
    for band in [(95.0, 96.0), (99.0, 99.1), (99.8, 99.9), (99.99, 100.0)] {
        let cfg = Table4Config {
            scenario_a_runs: 0,
            scenario_b_runs: 60,
            training: TrainingConfig {
                runs: 24,
                percentile_band: band,
                ..TrainingConfig::quick(9)
            },
            ..Table4Config::quick(9)
        };
        let r = run_table4(&cfg);
        let b = &r.scenarios[1];
        println!(
            "  band {:>6.2}–{:<6.2}: model ACC {:>5.1} TPR {:>5.1} FPR {:>5.1}",
            band.0, band.1, b.dynamic_model.acc, b.dynamic_model.tpr, b.dynamic_model.fpr
        );
    }

    for s in &result.scenarios {
        assert!(
            s.dynamic_model.tpr >= s.raven.tpr,
            "{}: the dynamic model must not trail RAVEN on TPR",
            s.scenario
        );
    }

    // Stage-timing sidecar: one representative full session, profiled.
    // Wall-clock output, so it goes through save_profile (gitignored), never
    // into the deterministic table4_detection.json record above.
    let mut sim = raven_core::Simulation::new(raven_core::SimConfig::standard(9));
    sim.boot();
    let _ = sim.run_session();
    bench::save_profile("table4_detection", sim.profiler());
}
