//! Shared plumbing for the table/figure regeneration harnesses.
//!
//! Each `benches/*.rs` target reruns one experiment of the paper at paper
//! scale, prints the reproduced rows/series, and persists a JSON record
//! under `results/` at the workspace root (consumed by EXPERIMENTS.md).

#![forbid(unsafe_code)]

use std::path::PathBuf;

/// Directory where experiment records are persisted.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("results");
    dir
}

/// Persists one experiment's JSON record.
///
/// # Panics
///
/// Panics if the results directory cannot be created or the file cannot be
/// written — a bench run that silently loses its record is worse than one
/// that fails loudly.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment record");
    std::fs::write(&path, json).expect("write experiment record");
    println!("\n[saved {}]", path.display());
}

/// Persists a [`simbus::StageProfiler`] report as a **non-deterministic
/// sidecar** at `results/profile_<name>.json`.
///
/// Wall-clock stage timings vary run to run, so these files are gitignored
/// and must never be byte-compared or folded into the deterministic
/// experiment records written by [`save_json`] (lint rule R1 allowlists the
/// profiler exactly because its output stays out of those artifacts).
///
/// # Panics
///
/// Panics if the results directory cannot be created or the file cannot be
/// written.
pub fn save_profile(name: &str, profiler: &simbus::StageProfiler) {
    save_profile_stats(name, &profiler.report());
}

/// Persists any `Vec<StageStats>`-shaped timing report as a
/// **non-deterministic sidecar** at `results/profile_<name>.json` — the
/// one profile schema shared by the stage profiler, the span layer
/// (`SpanHandle::stage_stats`), and the sweep-trace collector
/// (`SweepTraceCollector::stage_stats`), so every producer and the
/// `raven-sim --profile-json` flag write interchangeable files.
///
/// # Panics
///
/// Panics if the results directory cannot be created or the file cannot be
/// written.
pub fn save_profile_stats(name: &str, stats: &[simbus::obs::StageStats]) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("profile_{name}.json"));
    let json = serde_json::to_string_pretty(&stats).expect("serialize stage profile");
    std::fs::write(&path, json).expect("write stage profile");
    println!("[profile sidecar {}]", path.display());
}

/// Paper-scale toggle: set `RAVEN_BENCH_QUICK=1` to run reduced sizes (used
/// by CI smoke runs); default is paper scale.
pub fn quick_mode() -> bool {
    std::env::var("RAVEN_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_workspace_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn save_profile_writes_sidecar() {
        let mut p = simbus::StageProfiler::new();
        p.record_ns("stage_a", 1_000);
        p.record_ns("stage_a", 3_000);
        save_profile("_selftest", &p);
        let path = results_dir().join("profile__selftest.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("stage_a"));
        assert!(text.contains("mean_us"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn save_json_roundtrip() {
        save_json("_selftest", &serde_json::json!({"ok": true}));
        let path = results_dir().join("_selftest.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("ok"));
        std::fs::remove_file(path).unwrap();
    }
}
