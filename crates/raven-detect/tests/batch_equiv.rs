//! Property-based equivalence: [`BatchDetector`] vs independent scalar
//! [`DynamicDetector`] sessions, and the ee_step hoist regression.
//!
//! Contract under test: every batched lane produces assessments (features,
//! alarm bits, counters) *identical* to a standalone detector fed the same
//! measurements and commands — across lookahead horizons, fusion rules,
//! perturbed per-lane models, and `reset_session` on one lane mid-batch.

use proptest::prelude::*;
use raven_detect::{
    BatchDetector, DetectionThresholds, DetectorConfig, DynamicDetector, FusionRule,
};
use raven_dynamics::{PlantParams, RtModel};
use raven_kinematics::{ArmConfig, JointState, NUM_AXES};

fn workspace_joints() -> impl Strategy<Value = JointState> {
    (-1.0..1.0f64, 0.5..2.2f64, 0.12..0.40f64).prop_map(|(s, e, i)| JointState::new(s, e, i))
}

fn dac() -> impl Strategy<Value = [i16; 3]> {
    prop::array::uniform3(-20_000i16..20_000)
}

/// Mid-band synthetic thresholds: tight enough that violent commands alarm,
/// loose enough that gentle ones pass — so both alarm outcomes are exercised
/// without a slow training campaign per proptest case.
fn thresholds() -> impl Strategy<Value = DetectionThresholds> {
    (50.0..500.0f64, 5.0..50.0f64, 0.5..5.0f64).prop_map(|(a, v, j)| DetectionThresholds {
        motor_accel: [a; NUM_AXES],
        motor_vel: [v; NUM_AXES],
        joint_vel: [j; NUM_AXES],
    })
}

fn session(seed: u64) -> (ArmConfig, RtModel) {
    let params = PlantParams::raven_ii();
    let arm = ArmConfig::builder().coupling(params.coupling()).build();
    (arm, RtModel::new(params.perturbed(seed, 0.02)))
}

fn config(lookahead_steps: u32, fusion: FusionRule) -> DetectorConfig {
    DetectorConfig { lookahead_steps, fusion, ..DetectorConfig::default() }
}

/// Drives `cycles` measurement+assessment rounds over `m` lanes and asserts
/// every batched verdict equals its scalar twin's.
fn assert_equivalent(
    m: usize,
    cfg: DetectorConfig,
    t: DetectionThresholds,
    poses: &[JointState],
    dacs: &[[i16; 3]],
    reset_lane_at: Option<(usize, usize)>,
) -> Result<(), TestCaseError> {
    let sessions: Vec<_> = (0..m as u64).map(session).collect();
    let arms: Vec<_> = sessions.iter().map(|(a, _)| a.clone()).collect();
    let models: Vec<_> = sessions.iter().map(|(_, mo)| mo.clone()).collect();
    let mut batch = BatchDetector::from_models(&arms, &models, cfg);
    let mut scalars: Vec<_> =
        sessions.iter().map(|(a, mo)| DynamicDetector::new(a.clone(), mo.clone(), cfg)).collect();
    for (l, scalar) in scalars.iter_mut().enumerate() {
        batch.arm_lane(l, t);
        scalar.arm_with(t);
    }
    let coupling = PlantParams::raven_ii().coupling();
    for (k, (pose, cmd)) in poses.iter().zip(dacs).enumerate() {
        if let Some((lane, at)) = reset_lane_at {
            if k == at {
                batch.reset_session(lane);
                scalars[lane].reset_session();
            }
        }
        for (l, scalar) in scalars.iter_mut().enumerate() {
            // Each lane wanders a slightly different trajectory.
            let j = JointState::new(pose.shoulder + 0.01 * l as f64, pose.elbow, pose.insertion);
            let mpos = coupling.joints_to_motors(&j);
            scalar.sync_measurement(mpos);
            batch.sync_lane(l, mpos);
        }
        let cmds: Vec<[i16; 3]> = (0..m).map(|_| *cmd).collect();
        let verdicts = batch.assess_lanes(&cmds).to_vec();
        for (l, scalar) in scalars.iter_mut().enumerate() {
            let expected = scalar.assess(cmd);
            let got = verdicts[l];
            prop_assert!(
                got == expected,
                "lane {l} cycle {k}: batch {got:?} != scalar {expected:?}"
            );
        }
    }
    for (l, scalar) in scalars.iter().enumerate() {
        prop_assert!(batch.lane_assessments(l) == scalar.assessments(), "assessments lane {l}");
        prop_assert!(batch.lane_alarms(l) == scalar.alarms(), "alarms lane {l}");
        prop_assert!(
            batch.lane_first_alarm_assessment(l) == scalar.first_alarm_assessment(),
            "first alarm lane {l}"
        );
        prop_assert!(batch.lane_estop_requested(l) == scalar.estop_requested(), "estop lane {l}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched lanes == scalar detectors across lookahead horizons 1/2/4
    /// and both fusion rules.
    #[test]
    fn batch_matches_scalar_detectors(
        m in 1..5usize,
        lookahead in prop_oneof![Just(1u32), Just(2u32), Just(4u32)],
        fusion in prop_oneof![Just(FusionRule::AllThree), Just(FusionRule::AnyOne)],
        t in thresholds(),
        poses in prop::collection::vec(workspace_joints(), 6..7),
        dacs in prop::collection::vec(dac(), 6..7),
    ) {
        assert_equivalent(m, config(lookahead, fusion), t, &poses, &dacs, None)?;
    }

    /// `reset_session` on one lane mid-batch: that lane restarts exactly
    /// like a freshly reset scalar detector, and no other lane notices.
    #[test]
    fn reset_session_mid_batch_isolates_the_lane(
        lane in 0..3usize,
        t in thresholds(),
        poses in prop::collection::vec(workspace_joints(), 8..9),
        dacs in prop::collection::vec(dac(), 8..9),
    ) {
        assert_equivalent(3, config(2, FusionRule::AllThree), t, &poses, &dacs, Some((lane, 4)))?;
    }
}

/// Regression for the hoisted forward-kinematics call: `assess` used to
/// evaluate `arm.forward(&current.joint_pos())` once for the one-step
/// feature and *again* inside the lookahead branch. FK is pure, so sharing
/// the first evaluation must leave `ee_step` bit-identical to the
/// recomputed variant — asserted here against an explicit re-derivation
/// from the detector's own model.
#[test]
fn lookahead_ee_step_is_identical_to_recomputed_rollout() {
    let (arm, model) = session(1);
    for lookahead in [1u32, 2, 4, 8] {
        let cfg = config(lookahead, FusionRule::AllThree);
        let mut det = DynamicDetector::new(arm.clone(), model.clone(), cfg);
        let coupling = PlantParams::raven_ii().coupling();
        let poses = [JointState::new(0.0, 1.4, 0.25), JointState::new(0.02, 1.38, 0.26)];
        for pose in &poses {
            det.sync_measurement(coupling.joints_to_motors(pose));
        }
        let dac = [9_000, -4_000, 2_000];
        let got = det.assess(&dac).expect("measurement synced").features.ee_step;

        // Old-style computation, redundant FK and all: reconstruct the
        // tracked state from the same two measurements, then chain scalar
        // one-step predictions over the horizon.
        let dt = cfg.dt;
        let m0 = coupling.joints_to_motors(&poses[0]);
        let m1 = coupling.joints_to_motors(&poses[1]);
        let j0 = arm.motors_to_joints(&m0).to_array();
        let j1v = arm.motors_to_joints(&m1);
        let j1 = j1v.to_array();
        let dm = m1.delta(m0);
        let mut current = raven_dynamics::PlantState::default();
        current.set_motor_pos(m1);
        current.set_joint_pos(j1v);
        for i in 0..3 {
            current.x[3 + i] = dm.angles[i] / dt;
            current.x[9 + i] = (j1[i] - j0[i]) / dt;
        }
        let predicted = det.model().predict(&current, &dac);
        let ee_now = arm.forward(&current.joint_pos()).position;
        let ee_next = arm.forward(&predicted.joint_pos()).position;
        let mut expected = ee_now.distance(ee_next);
        if lookahead > 1 {
            let mut rolled = predicted;
            for _ in 1..lookahead {
                rolled = det.model().predict(&rolled, &dac);
            }
            // The recomputation the old code performed redundantly:
            let ee_now_again = arm.forward(&current.joint_pos()).position;
            let end = arm.forward(&rolled.joint_pos()).position;
            expected = expected.max(ee_now_again.distance(end));
        }
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "ee_step drifted at lookahead {lookahead}: {got} vs {expected}"
        );
    }
}
