//! Property-based tests for the detection stack.

use proptest::prelude::*;
use raven_detect::{DetectionThresholds, InstantFeatures, ThresholdLearner};

fn features() -> impl Strategy<Value = InstantFeatures> {
    (
        prop::array::uniform3(0.0f64..1e5),
        prop::array::uniform3(0.0f64..1e3),
        prop::array::uniform3(0.0f64..1e2),
        0.0f64..0.01,
    )
        .prop_map(|(motor_accel, motor_vel, joint_vel, ee_step)| InstantFeatures {
            motor_accel,
            motor_vel,
            joint_vel,
            ee_step,
        })
}

proptest! {
    #[test]
    fn fused_alarm_implies_any_alarm(f in features(), samples in prop::collection::vec(features(), 8..64)) {
        let mut learner = ThresholdLearner::new();
        for s in &samples {
            learner.observe(s);
        }
        let t = learner.learn(90.0, 95.0).expect("samples present");
        // Logical containment: the fused (AND) rule can never fire when the
        // any (OR) rule would not.
        if t.fused_alarm(&f) {
            prop_assert!(t.any_alarm(&f));
        }
    }

    #[test]
    fn thresholds_bounded_by_training_extremes(samples in prop::collection::vec(features(), 4..64)) {
        let mut learner = ThresholdLearner::new();
        for s in &samples {
            learner.observe(s);
        }
        let t = learner.learn_default().unwrap();
        for axis in 0..3 {
            let max_acc = samples.iter().map(|s| s.motor_accel[axis]).fold(0.0, f64::max);
            let min_acc = samples.iter().map(|s| s.motor_accel[axis]).fold(f64::INFINITY, f64::min);
            prop_assert!(t.motor_accel[axis] <= max_acc + 1e-9);
            prop_assert!(t.motor_accel[axis] >= min_acc - 1e-9);
        }
    }

    #[test]
    fn training_features_rarely_alarm_against_own_thresholds(
        samples in prop::collection::vec(features(), 32..128),
    ) {
        let mut learner = ThresholdLearner::new();
        for s in &samples {
            learner.observe(s);
        }
        let t = learner.learn_default().unwrap();
        // At the 99.8th percentile, essentially no training sample can
        // exceed all three variables on one axis simultaneously.
        let alarms = samples.iter().filter(|s| t.fused_alarm(s)).count();
        prop_assert!(
            alarms <= 1 + samples.len() / 64,
            "{alarms} alarms on {} training samples",
            samples.len()
        );
    }

    #[test]
    fn scaling_thresholds_is_monotone_in_alarms(
        f in features(),
        samples in prop::collection::vec(features(), 8..64),
        factor in 1.01f64..10.0,
    ) {
        let mut learner = ThresholdLearner::new();
        for s in &samples {
            learner.observe(s);
        }
        let t = learner.learn(50.0, 60.0).unwrap();
        let loose = t.scaled(factor);
        // Loosening thresholds can only remove alarms, never add them.
        if loose.fused_alarm(&f) {
            prop_assert!(t.fused_alarm(&f));
        }
        if loose.any_alarm(&f) {
            prop_assert!(t.any_alarm(&f));
        }
    }

    #[test]
    fn json_roundtrip_preserves_decisions(f in features(), samples in prop::collection::vec(features(), 8..32)) {
        let mut learner = ThresholdLearner::new();
        for s in &samples {
            learner.observe(s);
        }
        let t = learner.learn(80.0, 90.0).unwrap();
        let back = DetectionThresholds::from_json(&t.to_json().unwrap()).unwrap();
        // Decisions survive serialization even if the last ULP does not.
        prop_assert_eq!(t.fused_alarm(&f), back.fused_alarm(&f));
    }

    #[test]
    fn merged_learner_equals_sequential(
        a in prop::collection::vec(features(), 4..32),
        b in prop::collection::vec(features(), 4..32),
    ) {
        let mut combined = ThresholdLearner::new();
        for s in a.iter().chain(&b) {
            combined.observe(s);
        }
        let mut la = ThresholdLearner::new();
        for s in &a {
            la.observe(s);
        }
        let mut lb = ThresholdLearner::new();
        for s in &b {
            lb.observe(s);
        }
        la.merge(&lb);
        prop_assert_eq!(la.samples(), combined.samples());
        let t1 = la.learn_default().unwrap();
        let t2 = combined.learn_default().unwrap();
        for i in 0..3 {
            prop_assert!((t1.motor_accel[i] - t2.motor_accel[i]).abs() < 1e-9);
            prop_assert!((t1.joint_vel[i] - t2.joint_vel[i]).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Minimizer fixture: the feature vector shrinks to all-zero kinematics
// with the end-effector step pinned just past the failure threshold.

#[test]
fn minimizer_pins_the_smallest_alarming_ee_step() {
    use proptest::test_runner::run_reporting;
    let cfg = ProptestConfig::with_cases(64);
    let strat = (features(),);
    let failure = run_reporting("det_minimizer_fixture", &cfg, &strat, |(f,)| {
        if f.ee_step > 0.005 {
            Err(TestCaseError::fail("end-effector step beyond the fixture bound"))
        } else {
            Ok(())
        }
    })
    .expect_err("property was constructed to fail");
    let f = failure.minimized.0;
    assert!(f.ee_step > 0.005 && f.ee_step < 0.005 + 1e-6, "threshold pinned: {f:?}");
    assert!(
        f.motor_accel.iter().chain(&f.motor_vel).chain(&f.joint_vel).all(|&v| v == 0.0),
        "irrelevant features reach their range start: {f:?}"
    );
}
