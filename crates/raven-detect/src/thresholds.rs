//! Threshold learning over fault-free runs.
//!
//! "The thresholds used for detecting anomalies are learned through
//! measuring the maximum instant velocities of each of the variables over
//! 600 fault-free runs of the model with two different trajectories … we
//! chose values between the 99.8–99.9th percentiles of instant velocity as
//! the threshold for each variable" (paper §IV.C). [`ThresholdLearner`]
//! accumulates the nine per-axis feature magnitudes over fault-free cycles
//! and emits [`DetectionThresholds`].

use raven_kinematics::NUM_AXES;
use raven_math::stats::PercentileEstimator;
use serde::{Deserialize, Serialize};

use crate::features::InstantFeatures;

/// Learned per-variable alarm thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionThresholds {
    /// Motor acceleration thresholds per axis (rad/s²).
    pub motor_accel: [f64; NUM_AXES],
    /// Motor velocity thresholds per axis (rad/s).
    pub motor_vel: [f64; NUM_AXES],
    /// Joint velocity thresholds per axis.
    pub joint_vel: [f64; NUM_AXES],
}

impl DetectionThresholds {
    /// Serializes the thresholds to pretty JSON — training campaigns are
    /// expensive (the paper's protocol is 600 runs), so deployments persist
    /// the result.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error instead of panicking: this type
    /// lives in a hot-path crate where lint rule R3 bans `expect`.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Loads thresholds from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// `true` when the features exceed *all three* variables on some axis —
    /// the paper's alarm-fusion rule ("raises an alert only when all three
    /// variables indicate an abnormality", §IV.C).
    pub fn fused_alarm(&self, f: &InstantFeatures) -> bool {
        (0..NUM_AXES).any(|i| {
            f.motor_accel[i] > self.motor_accel[i]
                && f.motor_vel[i] > self.motor_vel[i]
                && f.joint_vel[i] > self.joint_vel[i]
        })
    }

    /// `true` when *any* single variable exceeds its threshold on any axis —
    /// the no-fusion ablation (more sensitive, more false alarms).
    pub fn any_alarm(&self, f: &InstantFeatures) -> bool {
        (0..NUM_AXES).any(|i| {
            f.motor_accel[i] > self.motor_accel[i]
                || f.motor_vel[i] > self.motor_vel[i]
                || f.joint_vel[i] > self.joint_vel[i]
        })
    }

    /// Scales every threshold by `factor` (sensitivity ablation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> DetectionThresholds {
        assert!(factor.is_finite() && factor > 0.0, "invalid scale factor {factor}");
        let mut out = *self;
        for i in 0..NUM_AXES {
            out.motor_accel[i] *= factor;
            out.motor_vel[i] *= factor;
            out.joint_vel[i] *= factor;
        }
        out
    }
}

/// Accumulates fault-free feature samples and learns thresholds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThresholdLearner {
    estimators: [PercentileEstimator; 3 * NUM_AXES],
    samples: u64,
    runs: u64,
}

impl ThresholdLearner {
    /// Creates an empty learner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one fault-free cycle's features.
    pub fn observe(&mut self, features: &InstantFeatures) {
        for (est, v) in self.estimators.iter_mut().zip(features.flattened()) {
            est.push(v);
        }
        self.samples += 1;
    }

    /// Marks the end of one fault-free run (bookkeeping toward the paper's
    /// 600-run protocol).
    pub fn end_run(&mut self) {
        self.runs += 1;
    }

    /// Cycles observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Runs observed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Learns thresholds at the paper's percentile band (midpoint of
    /// `[p_lo, p_hi]`, e.g. 99.8–99.9).
    ///
    /// Returns `None` when no samples were observed.
    pub fn learn(&self, p_lo: f64, p_hi: f64) -> Option<DetectionThresholds> {
        let mut values = [0.0; 3 * NUM_AXES];
        for (i, est) in self.estimators.iter().enumerate() {
            values[i] = est.percentile_band(p_lo, p_hi)?;
        }
        Some(DetectionThresholds {
            motor_accel: [values[0], values[1], values[2]],
            motor_vel: [values[3], values[4], values[5]],
            joint_vel: [values[6], values[7], values[8]],
        })
    }

    /// Learns at the paper's default band (99.8–99.9th percentile).
    pub fn learn_default(&self) -> Option<DetectionThresholds> {
        self.learn(99.8, 99.9)
    }

    /// Merges another learner's samples and run counts into this one —
    /// used to aggregate the paper's 600-run training protocol across
    /// per-run detector instances.
    pub fn merge(&mut self, other: &ThresholdLearner) {
        for (mine, theirs) in self.estimators.iter_mut().zip(&other.estimators) {
            mine.merge(theirs);
        }
        self.samples += other.samples;
        self.runs += other.runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(scale: f64) -> InstantFeatures {
        InstantFeatures {
            motor_accel: [scale, 2.0 * scale, 3.0 * scale],
            motor_vel: [4.0 * scale, 5.0 * scale, 6.0 * scale],
            joint_vel: [7.0 * scale, 8.0 * scale, 9.0 * scale],
            ee_step: 0.0,
        }
    }

    fn trained_learner() -> ThresholdLearner {
        let mut l = ThresholdLearner::new();
        // 1000 fault-free samples with magnitudes in [0, 1).
        for k in 0..1000 {
            l.observe(&features(k as f64 / 1000.0));
        }
        l.end_run();
        l
    }

    #[test]
    fn learn_requires_samples() {
        assert!(ThresholdLearner::new().learn_default().is_none());
        assert!(trained_learner().learn_default().is_some());
    }

    #[test]
    fn thresholds_sit_near_the_top_of_the_faultfree_range() {
        let t = trained_learner().learn_default().unwrap();
        // Variable 0 (motor_accel[0]) ranged over [0, 1): its 99.8–99.9th
        // percentile is just below 1.
        assert!(t.motor_accel[0] > 0.99 && t.motor_accel[0] < 1.0);
        assert!(t.joint_vel[2] > 0.99 * 9.0 && t.joint_vel[2] < 9.0);
    }

    #[test]
    fn fused_alarm_needs_all_three_variables() {
        let t = trained_learner().learn_default().unwrap();
        // All three on axis 0 exceed: alarm.
        let mut f = features(0.0);
        f.motor_accel[0] = 10.0;
        f.motor_vel[0] = 10.0;
        f.joint_vel[0] = 10.0;
        assert!(t.fused_alarm(&f));
        // Only acceleration exceeds: fusion suppresses it, any_alarm fires.
        let mut f = features(0.0);
        f.motor_accel[0] = 10.0;
        assert!(!t.fused_alarm(&f));
        assert!(t.any_alarm(&f));
    }

    #[test]
    fn fusion_is_per_axis_not_cross_axis() {
        let t = trained_learner().learn_default().unwrap();
        // Three exceedances scattered across different axes: no fused alarm.
        let mut f = features(0.0);
        f.motor_accel[0] = 100.0;
        f.motor_vel[1] = 100.0;
        f.joint_vel[2] = 100.0;
        assert!(!t.fused_alarm(&f));
    }

    #[test]
    fn faultfree_samples_rarely_alarm_at_998() {
        let l = trained_learner();
        let t = l.learn_default().unwrap();
        let alarms = (0..1000).filter(|&k| t.fused_alarm(&features(k as f64 / 1000.0))).count();
        // Only the top ~0.2% of the training data can exceed.
        assert!(alarms <= 3, "{alarms} alarms on training data");
    }

    #[test]
    fn scaled_moves_sensitivity() {
        let t = trained_learner().learn_default().unwrap();
        let loose = t.scaled(2.0);
        let f = features(1.01); // just above the learned band
        assert!(t.fused_alarm(&f));
        assert!(!loose.fused_alarm(&f));
    }

    #[test]
    fn run_bookkeeping() {
        let mut l = ThresholdLearner::new();
        l.observe(&features(0.5));
        l.end_run();
        l.end_run();
        assert_eq!(l.samples(), 1);
        assert_eq!(l.runs(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn bad_scale_panics() {
        let t = trained_learner().learn_default().unwrap();
        let _ = t.scaled(0.0);
    }
}
