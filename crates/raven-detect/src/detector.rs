//! The dynamic model-based anomaly detector and its mitigation policies —
//! the paper's §IV.C, implemented as a guard on the USB write path.
//!
//! Placement matters: the paper argues the detector belongs "at lower layers
//! of control structure and just before the commands are going to be
//! executed on the physical robot" (§IV.C), downstream of any compromised
//! software. [`GuardInterceptor`] therefore installs as the *last* write
//! interceptor: it sees exactly the bytes the board would execute —
//! including any malware mutations — and vets them against the model's
//! one-step prediction *before* they reach the motors.

use std::sync::Arc;

use parking_lot::Mutex;
use raven_dynamics::{BatchModel, PlantState, RtModel};
use raven_hw::channel::{WriteAction, WriteContext, WriteInterceptor};
use raven_hw::{RobotState, UsbCommandPacket};
use raven_kinematics::{ArmConfig, MotorState, NUM_AXES};
use serde::{Deserialize, Serialize};
use simbus::obs::{names, spans, Event, EventKind, Severity, SharedObserver};
use simbus::{SpanGuard, SpanHandle};

use crate::features::InstantFeatures;
use crate::thresholds::{DetectionThresholds, ThresholdLearner};

/// What to do when a command is judged unsafe (paper §IV.C: "either
/// correcting the malicious control command by forcing the robot to stay in
/// a previously safe state or stopping the commands from execution and put
/// the control software into a safe state (E-STOP)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Mitigation {
    /// Record alarms but forward every command unchanged (shadow mode) —
    /// used by the evaluation campaigns to measure detection probability
    /// without altering the physical outcome (Table IV, Fig. 9).
    Observe,
    /// Replace the command with a zero-torque hold and keep holding for a
    /// cooldown window (availability-preserving: the brakes stay off and
    /// teleoperation resumes once commands look safe again).
    BlockAndHold,
    /// Suppress the command and demand an emergency stop
    /// (safety-maximizing).
    #[default]
    EStop,
}

/// How per-variable threshold exceedances combine into an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FusionRule {
    /// The paper's rule: alarm only when motor acceleration, motor velocity
    /// AND joint velocity all exceed on some axis ("raises an alert only
    /// when all three variables indicate an abnormality", §IV.C).
    #[default]
    AllThree,
    /// Ablation: any single exceedance alarms (more sensitive, more false
    /// alarms — the case the paper's fusion is designed to avoid).
    AnyOne,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Percentile band for threshold learning (paper: 99.8–99.9).
    pub percentile_band: (f64, f64),
    /// Alarm fusion rule.
    pub fusion: FusionRule,
    /// Prediction horizon in control steps. 1 reproduces the paper's
    /// detector; 2 matches its "1 mm jump within 1–2 milliseconds" phrasing
    /// exactly; larger horizons model the §IV.C future-work "custom trusted
    /// hardware module" with budget for deeper rollouts: the candidate
    /// command is *held* for `lookahead_steps` model steps and the
    /// cumulative end-effector displacement is checked against the limit.
    pub lookahead_steps: u32,
    /// Hard cap on the predicted end-effector step per control period
    /// (paper: 1 mm per 1–2 ms, from expert surgeons).
    pub ee_step_limit: f64,
    /// Mitigation policy on alarm.
    pub mitigation: Mitigation,
    /// Cycles to keep substituting after an alarm in
    /// [`Mitigation::BlockAndHold`] — prevents an attacker from ratcheting
    /// velocity up between isolated alarms.
    pub hold_cooldown_cycles: u32,
    /// Control period (seconds).
    pub dt: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            percentile_band: (99.8, 99.9),
            fusion: FusionRule::AllThree,
            lookahead_steps: 2,
            ee_step_limit: 1.0e-3,
            mitigation: Mitigation::EStop,
            hold_cooldown_cycles: 50,
            dt: 1e-3,
        }
    }
}

/// One command assessment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// The computed instant features.
    pub features: InstantFeatures,
    /// Fused threshold exceedance (motor accel ∧ motor vel ∧ joint vel on
    /// some axis).
    pub threshold_alarm: bool,
    /// Predicted end-effector step above the hard 1 mm limit.
    pub ee_alarm: bool,
}

impl Assessment {
    /// Overall alarm decision.
    pub fn alarm(&self) -> bool {
        self.threshold_alarm || self.ee_alarm
    }
}

/// Operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorMode {
    /// Accumulating fault-free statistics; never alarms.
    Learning,
    /// Armed with thresholds; assessing every Pedal-Down command.
    Armed,
}

/// Attempted to arm a detector that never saw a fault-free sample — there
/// is nothing to learn thresholds from (the paper's protocol trains on 600
/// fault-free runs first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoFaultFreeSamples;

impl std::fmt::Display for NoFaultFreeSamples {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cannot arm: no fault-free samples observed")
    }
}

impl std::error::Error for NoFaultFreeSamples {}

/// Internal mode representation: armed *means* having thresholds, so the
/// armed assessment path is infallible by construction (no `Option` to
/// unwrap inside the control cycle — lint rule R3). Shared with the
/// batch detector, whose lanes carry the same per-session state.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ModeState {
    Learning,
    Armed(DetectionThresholds),
}

/// Reconstructs the tracked plant state from one encoder measurement:
/// joint positions through the coupling, velocities by differencing
/// against the previous sample. Shared by [`DynamicDetector`] and the
/// batch detector so a batched lane tracks measurements bit-identically
/// to a scalar session.
pub(crate) fn measured_state(
    arm: &ArmConfig,
    dt: f64,
    last_mpos: &mut Option<MotorState>,
    last_jpos: &mut Option<[f64; NUM_AXES]>,
    mpos: MotorState,
) -> PlantState {
    let jpos = arm.motors_to_joints(&mpos);
    let ja = jpos.to_array();
    let mvel = match *last_mpos {
        Some(last) => {
            let d = mpos.delta(last);
            [d.angles[0] / dt, d.angles[1] / dt, d.angles[2] / dt]
        }
        None => [0.0; NUM_AXES],
    };
    let jvel = match *last_jpos {
        Some(last) => [(ja[0] - last[0]) / dt, (ja[1] - last[1]) / dt, (ja[2] - last[2]) / dt],
        None => [0.0; NUM_AXES],
    };
    *last_mpos = Some(mpos);
    *last_jpos = Some(ja);
    let mut state = PlantState::default();
    state.set_motor_pos(mpos);
    state.set_joint_pos(jpos);
    state.x[3] = mvel[0];
    state.x[4] = mvel[1];
    state.x[5] = mvel[2];
    state.x[9] = jvel[0];
    state.x[10] = jvel[1];
    state.x[11] = jvel[2];
    state
}

/// The detector core: real-time model + measurement tracking + thresholds.
///
/// Share it between the harness (which feeds encoder measurements each
/// cycle via [`DynamicDetector::sync_measurement`]) and the
/// [`GuardInterceptor`] on the write path via [`shared`].
#[derive(Debug)]
pub struct DynamicDetector {
    arm: ArmConfig,
    model: RtModel,
    /// One-lane SoA kernel the assessment stepping delegates to: the
    /// M=1 lane of `raven_dynamics::batch` computes bit-identical
    /// states to [`RtModel::predict`] (the batch module's equivalence
    /// contract), converts DAC→torque once per command instead of once
    /// per rollout step, and keeps its integrator scratch preallocated.
    lane: BatchModel,
    config: DetectorConfig,
    mode: ModeState,
    learner: ThresholdLearner,
    tracked: Option<PlantState>,
    last_mpos: Option<MotorState>,
    last_jpos: Option<[f64; NUM_AXES]>,
    /// Ring buffer of recent non-alarming commands; substitution uses the
    /// *oldest* entry (~128 ms back), guaranteed to predate any attack the
    /// detector catches within its latency.
    safe_history: std::collections::VecDeque<[i16; raven_hw::DAC_CHANNELS]>,
    hold_cooldown: u32,
    assessments: u64,
    alarms: u64,
    first_alarm_assessment: Option<u64>,
    estop_requested: bool,
    last_assessment: Option<Assessment>,
    spans: SpanHandle,
    /// Open `span.mitigation.window` guard: opened on the first alarm,
    /// closed when the hold cooldown drains (or at session reset/teardown).
    mitigation_span: Option<SpanGuard>,
    /// Installed kill-suite mutant, if any (`None` ⇒ production behavior).
    #[cfg(feature = "mutant-hooks")]
    mutation: Option<crate::mutants::DetectorMutation>,
}

impl DynamicDetector {
    /// Creates a detector in learning mode.
    ///
    /// `model` is the real-time model — typically built from a *perturbed*
    /// parameter set, reflecting that the paper's hand-tuned model does not
    /// match the robot exactly (Fig. 8).
    pub fn new(arm: ArmConfig, model: RtModel, config: DetectorConfig) -> Self {
        let lane = BatchModel::with_params(std::slice::from_ref(model.params()), model.config());
        DynamicDetector {
            arm,
            model,
            lane,
            config,
            mode: ModeState::Learning,
            learner: ThresholdLearner::new(),
            tracked: None,
            last_mpos: None,
            last_jpos: None,
            safe_history: std::collections::VecDeque::new(),
            hold_cooldown: 0,
            assessments: 0,
            alarms: 0,
            first_alarm_assessment: None,
            estop_requested: false,
            last_assessment: None,
            spans: SpanHandle::default(),
            mitigation_span: None,
            #[cfg(feature = "mutant-hooks")]
            mutation: None,
        }
    }

    /// Installs a span handle so every assessment runs under a
    /// `span.detector.verdict` span and alarms open the
    /// `span.mitigation.window` span. Disabled handles cost nothing.
    pub fn set_span_handle(&mut self, handle: SpanHandle) {
        self.spans = handle;
    }

    /// Closes the mitigation-window span, if one is open.
    pub fn close_mitigation_window(&mut self) {
        self.mitigation_span = None;
    }

    /// Installs (or clears) a kill-suite mutant. Test-only: exists solely
    /// for the `raven-verify` mutation kill-suite.
    #[cfg(feature = "mutant-hooks")]
    pub fn set_mutation(&mut self, mutation: Option<crate::mutants::DetectorMutation>) {
        self.mutation = mutation;
    }

    /// The installed kill-suite mutant, if any.
    #[cfg(feature = "mutant-hooks")]
    pub fn mutation(&self) -> Option<crate::mutants::DetectorMutation> {
        self.mutation
    }

    /// Current mode.
    pub fn mode(&self) -> DetectorMode {
        match self.mode {
            ModeState::Learning => DetectorMode::Learning,
            ModeState::Armed(_) => DetectorMode::Armed,
        }
    }

    /// The configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Learned thresholds, once armed.
    pub fn thresholds(&self) -> Option<&DetectionThresholds> {
        match &self.mode {
            ModeState::Learning => None,
            ModeState::Armed(t) => Some(t),
        }
    }

    /// The threshold learner (for inspection and the 600-run protocol).
    pub fn learner(&self) -> &ThresholdLearner {
        &self.learner
    }

    /// The real-time model the assessment path is configured from. The
    /// actual stepping runs on a 1-lane batch kernel built from this
    /// model's parameters; the two are bit-identical by the batch
    /// module's equivalence contract.
    pub fn model(&self) -> &RtModel {
        &self.model
    }

    /// Commands assessed while armed.
    pub fn assessments(&self) -> u64 {
        self.assessments
    }

    /// Alarms raised while armed.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// `true` once any alarm has fired in this session.
    pub fn alarmed(&self) -> bool {
        self.alarms > 0
    }

    /// Assessment index (1-based) of the first alarm, if any — the basis of
    /// detection-latency measurements.
    pub fn first_alarm_assessment(&self) -> Option<u64> {
        self.first_alarm_assessment
    }

    /// `true` when the E-STOP mitigation has been requested.
    pub fn estop_requested(&self) -> bool {
        self.estop_requested
    }

    /// The most recent assessment.
    pub fn last_assessment(&self) -> Option<&Assessment> {
        self.last_assessment.as_ref()
    }

    /// Feeds the measured motor positions for this cycle (from the encoder
    /// feedback). The detector reconstructs velocities by differencing and
    /// joint states through the coupling — the same information the real
    /// detector extracts from the USB read path.
    pub fn sync_measurement(&mut self, mpos: MotorState) {
        self.tracked = Some(measured_state(
            &self.arm,
            self.config.dt,
            &mut self.last_mpos,
            &mut self.last_jpos,
            mpos,
        ));
    }

    /// Assesses a candidate DAC command against the model's prediction.
    /// Returns `None` when no measurement has been synced yet.
    ///
    /// The instant features come from the one-step prediction (the paper's
    /// detector); with `lookahead_steps > 1` the command is additionally
    /// rolled out over the horizon and the *cumulative* end-effector
    /// displacement is checked against the limit.
    pub fn assess(&mut self, dac: &[i16; NUM_AXES]) -> Option<Assessment> {
        let _verdict = self.spans.begin(spans::DETECTOR_VERDICT);
        let current = self.tracked?;
        // Single-session stepping delegates to the M=1 lane of the SoA
        // batch kernel: the DAC→torque conversion is latched once and the
        // lookahead rollout re-steps the lane under it, bit-identical to
        // re-predicting with the same command each step.
        self.lane.load_state(0, &current);
        self.lane.set_dac(0, dac);
        self.lane.step_lanes();
        let predicted = self.lane.state(0);
        // FK of the current state is needed both for the one-step feature
        // and as the lookahead start point — evaluate it once and share.
        let ee_now = self.arm.forward(&current.joint_pos()).position;
        let mut features = InstantFeatures::compute_with_current_ee(
            &self.arm,
            &current,
            &predicted,
            self.config.dt,
            ee_now,
        );
        if self.config.lookahead_steps > 1 {
            for _ in 1..self.config.lookahead_steps {
                self.lane.step_lanes();
            }
            let rolled = self.lane.state(0);
            let end = self.arm.forward(&rolled.joint_pos()).position;
            features.ee_step = features.ee_step.max(ee_now.distance(end));
        }
        match self.mode {
            ModeState::Learning => {
                self.learner.observe(&features);
                Some(Assessment { features, threshold_alarm: false, ee_alarm: false })
            }
            ModeState::Armed(thresholds) => {
                let threshold_alarm = self.threshold_alarm_for(&thresholds, &features);
                let ee_alarm = self.ee_alarm_for(&features);
                let assessment = Assessment { features, threshold_alarm, ee_alarm };
                self.assessments += 1;
                if assessment.alarm() {
                    self.count_alarm();
                    let first = self.first_alarm_index();
                    self.first_alarm_assessment.get_or_insert(first);
                    if self.config.mitigation == Mitigation::EStop && self.estop_request_enabled() {
                        self.estop_requested = true;
                    }
                    if self.spans.is_enabled() && self.mitigation_span.is_none() {
                        self.mitigation_span =
                            Some(self.spans.begin_floating(spans::MITIGATION_WINDOW));
                    }
                }
                self.last_assessment = Some(assessment);
                Some(assessment)
            }
        }
    }

    /// Marks the end of one fault-free learning run.
    pub fn end_learning_run(&mut self) {
        self.learner.end_run();
    }

    /// Finalizes learning: computes thresholds at the configured percentile
    /// band and arms the detector.
    ///
    /// # Errors
    ///
    /// Returns [`NoFaultFreeSamples`] when no fault-free samples were
    /// observed — there is nothing to learn from.
    pub fn arm(&mut self) -> Result<(), NoFaultFreeSamples> {
        let (lo, hi) = self.config.percentile_band;
        let thresholds = self.learner.learn(lo, hi).ok_or(NoFaultFreeSamples)?;
        self.arm_with(thresholds);
        Ok(())
    }

    /// Arms with externally supplied thresholds (e.g. deserialized from a
    /// previous training campaign).
    pub fn arm_with(&mut self, thresholds: DetectionThresholds) {
        self.mode = ModeState::Armed(thresholds);
    }

    /// Clears per-session alarm state (between campaign runs).
    pub fn reset_session(&mut self) {
        self.alarms = 0;
        self.assessments = 0;
        self.first_alarm_assessment = None;
        self.estop_requested = false;
        self.last_assessment = None;
        self.tracked = None;
        self.last_mpos = None;
        self.last_jpos = None;
        self.safe_history.clear();
        self.hold_cooldown = 0;
        self.mitigation_span = None;
    }

    /// Depth of the safe-command history (cycles).
    const SAFE_HISTORY_DEPTH: usize = 128;

    fn remember_safe(&mut self, dac: [i16; raven_hw::DAC_CHANNELS]) {
        if self.safe_history.len() == Self::SAFE_HISTORY_DEPTH {
            self.safe_history.pop_front();
        }
        self.safe_history.push_back(dac);
    }

    /// The oldest remembered safe command, if any.
    fn held_safe(&self) -> Option<[i16; raven_hw::DAC_CHANNELS]> {
        self.safe_history.front().copied()
    }

    // ---- kill-suite hook points -------------------------------------
    //
    // Each decision the mutation kill-suite needs to sabotage routes
    // through one of these `cfg`-paired helpers. The `not(mutant-hooks)`
    // versions are the production logic, verbatim; the `mutant-hooks`
    // versions reproduce it exactly when `self.mutation` is `None` and
    // apply the seeded defect otherwise. See `crate::mutants`.

    /// Fused threshold-exceedance decision for one assessment.
    #[cfg(not(feature = "mutant-hooks"))]
    fn threshold_alarm_for(
        &self,
        thresholds: &DetectionThresholds,
        features: &InstantFeatures,
    ) -> bool {
        match self.config.fusion {
            FusionRule::AllThree => thresholds.fused_alarm(features),
            FusionRule::AnyOne => thresholds.any_alarm(features),
        }
    }

    #[cfg(feature = "mutant-hooks")]
    fn threshold_alarm_for(
        &self,
        thresholds: &DetectionThresholds,
        features: &InstantFeatures,
    ) -> bool {
        use crate::mutants::DetectorMutation as M;
        let mut f = *features;
        match self.mutation {
            Some(M::ThresholdsIgnored) => return false,
            Some(M::FusionBecomesAnyOne) => return thresholds.any_alarm(&f),
            Some(M::FusionDropsJointVel) => {
                return (0..NUM_AXES).any(|i| {
                    f.motor_accel[i] > thresholds.motor_accel[i]
                        && f.motor_vel[i] > thresholds.motor_vel[i]
                });
            }
            Some(M::SwappedVelAccel) => std::mem::swap(&mut f.motor_accel, &mut f.motor_vel),
            _ => {}
        }
        match self.config.fusion {
            FusionRule::AllThree => thresholds.fused_alarm(&f),
            FusionRule::AnyOne => thresholds.any_alarm(&f),
        }
    }

    /// Hard end-effector step-limit decision for one assessment.
    #[cfg(not(feature = "mutant-hooks"))]
    fn ee_alarm_for(&self, features: &InstantFeatures) -> bool {
        features.ee_step > self.config.ee_step_limit
    }

    #[cfg(feature = "mutant-hooks")]
    fn ee_alarm_for(&self, features: &InstantFeatures) -> bool {
        use crate::mutants::DetectorMutation as M;
        match self.mutation {
            Some(M::EeCheckDisabled) => false,
            Some(M::EeLimitTenfold) => features.ee_step > 10.0 * self.config.ee_step_limit,
            _ => features.ee_step > self.config.ee_step_limit,
        }
    }

    /// Bumps the session alarm counter on an alarming assessment.
    #[cfg(not(feature = "mutant-hooks"))]
    fn count_alarm(&mut self) {
        self.alarms += 1;
    }

    #[cfg(feature = "mutant-hooks")]
    fn count_alarm(&mut self) {
        if self.mutation != Some(crate::mutants::DetectorMutation::AlarmCounterStuck) {
            self.alarms += 1;
        }
    }

    /// The 1-based assessment index recorded for the first alarm.
    #[cfg(not(feature = "mutant-hooks"))]
    fn first_alarm_index(&self) -> u64 {
        self.assessments
    }

    #[cfg(feature = "mutant-hooks")]
    fn first_alarm_index(&self) -> u64 {
        if self.mutation == Some(crate::mutants::DetectorMutation::FirstAlarmOffByOne) {
            self.assessments + 1
        } else {
            self.assessments
        }
    }

    /// Whether the E-STOP mitigation is allowed to request the stop.
    #[cfg(not(feature = "mutant-hooks"))]
    fn estop_request_enabled(&self) -> bool {
        true
    }

    #[cfg(feature = "mutant-hooks")]
    fn estop_request_enabled(&self) -> bool {
        self.mutation != Some(crate::mutants::DetectorMutation::EstopRequestDropped)
    }

    /// Whether the guard's block/substitute path is active at all.
    #[cfg(not(feature = "mutant-hooks"))]
    fn block_path_enabled(&self) -> bool {
        true
    }

    #[cfg(feature = "mutant-hooks")]
    fn block_path_enabled(&self) -> bool {
        self.mutation != Some(crate::mutants::DetectorMutation::BlockPathDisabled)
    }

    /// Cooldown cycles loaded after an alarming block-and-hold cycle.
    #[cfg(not(feature = "mutant-hooks"))]
    fn cooldown_reload(&self) -> u32 {
        self.config.hold_cooldown_cycles
    }

    #[cfg(feature = "mutant-hooks")]
    fn cooldown_reload(&self) -> u32 {
        if self.mutation == Some(crate::mutants::DetectorMutation::CooldownIgnored) {
            0
        } else {
            self.config.hold_cooldown_cycles
        }
    }

    /// The remembered safe command that block-and-hold substitutes.
    #[cfg(not(feature = "mutant-hooks"))]
    fn substitution_source(&self) -> Option<[i16; raven_hw::DAC_CHANNELS]> {
        self.held_safe()
    }

    #[cfg(feature = "mutant-hooks")]
    fn substitution_source(&self) -> Option<[i16; raven_hw::DAC_CHANNELS]> {
        if self.mutation == Some(crate::mutants::DetectorMutation::HoldSubstitutesLatest) {
            self.safe_history.back().copied()
        } else {
            self.held_safe()
        }
    }
}

/// A shareable handle to a detector.
pub type SharedDetector = Arc<Mutex<DynamicDetector>>;

/// Wraps a detector for sharing between the guard and the harness.
pub fn shared(detector: DynamicDetector) -> SharedDetector {
    Arc::new(Mutex::new(detector))
}

/// The write-path guard: assesses every Pedal-Down command packet before it
/// reaches the USB board, and mitigates on alarm.
#[derive(Debug)]
pub struct GuardInterceptor {
    detector: SharedDetector,
    observer: Option<SharedObserver>,
}

impl GuardInterceptor {
    /// Interceptor name.
    pub const NAME: &'static str = "dynamic-model-guard";

    /// Creates a guard over a shared detector.
    pub fn new(detector: SharedDetector) -> Self {
        GuardInterceptor { detector, observer: None }
    }

    /// Creates a guard that also reports assessments, verdicts, and blocked
    /// commands into an observer (events stamped with the write's virtual
    /// time from [`WriteContext`]).
    pub fn with_observer(detector: SharedDetector, observer: SharedObserver) -> Self {
        GuardInterceptor { detector, observer: Some(observer) }
    }
}

impl WriteInterceptor for GuardInterceptor {
    fn on_write(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
        let Ok(pkt) = UsbCommandPacket::decode_unchecked(buf) else {
            // Undecodable buffers cannot be executed by the board anyway.
            return WriteAction::Forward;
        };
        // Outside Pedal Down the brakes hold the robot; commands are inert.
        if pkt.state != RobotState::PedalDown {
            return WriteAction::Forward;
        }
        let mut det = self.detector.lock();
        let dac3 = [pkt.dac[0], pkt.dac[1], pkt.dac[2]];
        let Some(assessment) = det.assess(&dac3) else {
            return WriteAction::Forward;
        };
        let armed = matches!(det.mode, ModeState::Armed(_));
        if armed {
            if let Some(obs) = &self.observer {
                obs.lock().metrics.inc(names::DETECTOR_ASSESSMENTS);
            }
        }
        let holding = det.hold_cooldown > 0;
        if !assessment.alarm() && !holding {
            det.remember_safe(pkt.dac);
            return WriteAction::Forward;
        }
        // "blocked" = the board does not receive the command verbatim
        // (dropped outright, or substituted with a safe hold).
        let (action, blocked) = if !det.block_path_enabled() {
            (WriteAction::Forward, false)
        } else {
            match det.config.mitigation {
                Mitigation::Observe => (WriteAction::Forward, false),
                Mitigation::EStop => (WriteAction::Drop, true),
                Mitigation::BlockAndHold => {
                    // Substitute a zero-torque hold, keeping the incoming
                    // state byte (the watchdog must keep toggling or the
                    // PLC will independently E-STOP), and keep substituting
                    // through the cooldown window. Substituting the *last
                    // seen* command would be unsafe: the first packets of
                    // an injection pass before velocity builds and would be
                    // replayed forever.
                    if assessment.alarm() {
                        det.hold_cooldown = det.cooldown_reload();
                    } else {
                        det.hold_cooldown = det.hold_cooldown.saturating_sub(1);
                        if det.hold_cooldown == 0 {
                            det.close_mitigation_window();
                        }
                    }
                    match det.substitution_source() {
                        None => (WriteAction::Drop, true),
                        Some(mut dac) => {
                            // Wrist channels are positional set-points, not
                            // torques — hold them at their freshly
                            // commanded values.
                            dac[3..].copy_from_slice(&pkt.dac[3..]);
                            let replacement =
                                UsbCommandPacket { state: pkt.state, watchdog: pkt.watchdog, dac };
                            *buf = replacement.encode().to_vec();
                            (WriteAction::Forward, true)
                        }
                    }
                }
            }
        };
        if let Some(obs) = &self.observer {
            let mut obs = obs.lock();
            if blocked {
                obs.metrics.inc(names::DETECTOR_BLOCKED_COMMANDS);
            }
            if assessment.alarm() {
                obs.metrics.inc(names::DETECTOR_ALARMS);
                let action_label = match action {
                    WriteAction::Drop => "drop",
                    WriteAction::Forward if blocked => "hold",
                    WriteAction::Forward => "observe",
                };
                obs.event(
                    Event::new(ctx.time, "detector", Severity::Warn, EventKind::DetectorVerdict)
                        .with("assessment", det.assessments)
                        .with("seq", ctx.seq)
                        .with("threshold_alarm", assessment.threshold_alarm)
                        .with("ee_alarm", assessment.ee_alarm)
                        .with("ee_step_mm", assessment.features.ee_step * 1e3)
                        .with("action", action_label),
                );
            }
        }
        action
    }

    fn name(&self) -> &str {
        Self::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_dynamics::PlantParams;
    use raven_kinematics::JointState;
    use simbus::SimTime;

    fn setup(mitigation: Mitigation) -> (SharedDetector, PlantParams) {
        let params = PlantParams::raven_ii();
        let arm = ArmConfig::builder().coupling(params.coupling()).build();
        let model = RtModel::new(params.perturbed(1, 0.02));
        let config = DetectorConfig { mitigation, ..DetectorConfig::default() };
        let det = DynamicDetector::new(arm, model, config);
        (shared(det), params)
    }

    /// Trains on gentle synthetic motion and arms.
    fn train_and_arm(det: &SharedDetector, params: &PlantParams) {
        let mut d = det.lock();
        let coupling = params.coupling();
        for k in 0..2000u64 {
            let t = k as f64 * 1e-3;
            // Gentle sinusoidal joint motion, ~0.1 rad amplitude.
            let j = JointState::new(
                0.1 * (2.0 * t).sin(),
                1.4 + 0.08 * (1.5 * t).cos(),
                0.25 + 0.01 * (1.0 * t).sin(),
            );
            d.sync_measurement(coupling.joints_to_motors(&j));
            d.assess(&[200, 150, -100]);
        }
        d.end_learning_run();
        d.arm().expect("training fed fault-free samples");
    }

    /// Feeds a measurement showing the shoulder motor running away
    /// (~50 rad/s over one cycle), as seen mid-injection.
    fn runaway_measurement(det: &SharedDetector, params: &PlantParams) {
        let mut m = params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
        m.angles[0] += 0.05;
        det.lock().sync_measurement(m);
    }

    fn pedal_down_packet(dac0: i16) -> Vec<u8> {
        UsbCommandPacket {
            state: RobotState::PedalDown,
            watchdog: true,
            dac: [dac0, 0, 0, 0, 0, 0, 0, 0],
        }
        .encode()
        .to_vec()
    }

    fn ctx() -> WriteContext {
        WriteContext {
            time: SimTime::ZERO,
            seq: 0,
            process: raven_hw::UsbChannel::PROCESS,
            fd: raven_hw::UsbChannel::BOARD_FD,
        }
    }

    #[test]
    fn learning_mode_never_alarms() {
        let (det, params) = setup(Mitigation::EStop);
        let mut d = det.lock();
        d.sync_measurement(params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)));
        let a = d.assess(&[30_000, 0, 0]).unwrap();
        assert!(!a.alarm());
        assert_eq!(d.alarms(), 0);
        assert_eq!(d.mode(), DetectorMode::Learning);
    }

    #[test]
    fn armed_detector_flags_violent_command_and_passes_gentle() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        let mut d = det.lock();
        d.reset_session(); // fresh session: no stale differenced velocity
        d.sync_measurement(params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)));
        let gentle = d.assess(&[150, 100, -50]).unwrap();
        assert!(!gentle.alarm(), "gentle command must pass: {gentle:?}");
        // Mid-attack: the measured motors are already running away (as they
        // are a couple of milliseconds into a torque injection), and the
        // malicious command would keep accelerating them.
        let mut m = params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
        m.angles[0] += 0.05; // 50 rad/s measured over one cycle
        d.sync_measurement(m);
        let violent = d.assess(&[32_000, 0, 0]).unwrap();
        assert!(violent.alarm(), "runaway + saturating command must alarm: {violent:?}");
        assert!(d.alarmed());
        assert!(d.estop_requested());
    }

    #[test]
    fn guard_drops_alarming_packet_in_estop_mode() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        {
            let mut d = det.lock();
            d.reset_session();
            d.sync_measurement(
                params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)),
            );
        }
        let mut guard = GuardInterceptor::new(Arc::clone(&det));
        let mut safe = pedal_down_packet(150);
        assert_eq!(guard.on_write(&mut safe, &ctx()), WriteAction::Forward);
        runaway_measurement(&det, &params);
        let mut hot = pedal_down_packet(32_000);
        assert_eq!(guard.on_write(&mut hot, &ctx()), WriteAction::Drop);
        assert!(det.lock().estop_requested());
    }

    #[test]
    fn guard_substitutes_last_safe_in_hold_mode() {
        let (det, params) = setup(Mitigation::BlockAndHold);
        train_and_arm(&det, &params);
        {
            let mut d = det.lock();
            d.reset_session();
            d.sync_measurement(
                params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)),
            );
        }
        let mut guard = GuardInterceptor::new(Arc::clone(&det));
        let mut safe = pedal_down_packet(150);
        guard.on_write(&mut safe, &ctx());
        runaway_measurement(&det, &params);
        let mut hot = pedal_down_packet(32_000);
        assert_eq!(guard.on_write(&mut hot, &ctx()), WriteAction::Forward);
        let substituted = UsbCommandPacket::decode_unchecked(&hot).unwrap();
        assert_eq!(substituted.dac[0], 150, "last-safe DAC substituted");
        assert!(!det.lock().estop_requested(), "hold mode must not demand E-STOP");
    }

    #[test]
    fn guard_ignores_non_pedal_down_states() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        det.lock()
            .sync_measurement(params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)));
        let mut guard = GuardInterceptor::new(Arc::clone(&det));
        let mut pkt =
            UsbCommandPacket { state: RobotState::PedalUp, watchdog: true, dac: [32_000; 8] }
                .encode()
                .to_vec();
        assert_eq!(guard.on_write(&mut pkt, &ctx()), WriteAction::Forward);
        assert_eq!(det.lock().assessments(), 0);
    }

    #[test]
    fn guard_forwards_without_measurement() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        det.lock().reset_session(); // clears the tracked state
        let mut guard = GuardInterceptor::new(det);
        let mut pkt = pedal_down_packet(32_000);
        assert_eq!(guard.on_write(&mut pkt, &ctx()), WriteAction::Forward);
        let _ = params;
    }

    #[test]
    fn reset_session_clears_counters_but_keeps_thresholds() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        let mut d = det.lock();
        d.sync_measurement(params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)));
        d.assess(&[32_000, 0, 0]);
        assert!(d.alarmed());
        d.reset_session();
        assert!(!d.alarmed());
        assert!(!d.estop_requested());
        assert_eq!(d.mode(), DetectorMode::Armed);
        assert!(d.thresholds().is_some());
    }

    #[test]
    fn arming_without_samples_errors() {
        let (det, _) = setup(Mitigation::EStop);
        assert_eq!(det.lock().arm(), Err(NoFaultFreeSamples));
        assert_eq!(det.lock().mode(), DetectorMode::Learning);
    }

    #[test]
    fn observed_guard_reports_assessments_verdicts_and_blocks() {
        let (det, params) = setup(Mitigation::EStop);
        train_and_arm(&det, &params);
        {
            let mut d = det.lock();
            d.reset_session();
            d.sync_measurement(
                params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25)),
            );
        }
        let obs = simbus::obs::shared_observer(64);
        let mut guard = GuardInterceptor::with_observer(Arc::clone(&det), Arc::clone(&obs));
        let mut safe = pedal_down_packet(150);
        guard.on_write(&mut safe, &ctx());
        runaway_measurement(&det, &params);
        let mut hot = pedal_down_packet(32_000);
        assert_eq!(guard.on_write(&mut hot, &ctx()), WriteAction::Drop);
        let o = obs.lock();
        assert_eq!(o.metrics.counter("detector.assessments"), 2);
        assert_eq!(o.metrics.counter("detector.alarms"), 1);
        assert_eq!(o.metrics.counter("detector.blocked_commands"), 1);
        assert_eq!(o.events.count_kind("detector.verdict"), 1);
        let verdict = o.events.last().unwrap();
        assert_eq!(verdict.field("action"), Some(&simbus::obs::FieldValue::Str("drop".into())));
    }
}
