//! Dynamic model-based detection and mitigation — the primary contribution
//! of *"Targeted Attacks on Teleoperated Surgical Robots"* (DSN 2016, §IV).
//!
//! The defense runs the robot's dynamic model one control step ahead of the
//! physical system: every DAC command is vetted against the *predicted
//! consequence* of executing it, not against fixed thresholds on the command
//! value — the semantic gap the paper identifies in RAVEN's stock safety
//! checks (§IV.B).
//!
//! * [`features`] — the instant velocity/acceleration statistics per
//!   positioning axis, plus the predicted end-effector step;
//! * [`thresholds`] — percentile threshold learning over fault-free runs
//!   (99.8–99.9th percentile, §IV.C) and the three-way alarm fusion rule;
//! * [`detector`] — [`DynamicDetector`] (model tracking + assessment) and
//!   [`GuardInterceptor`] (the write-path guard), with the two mitigation
//!   policies of §IV.C: block-and-hold and E-STOP.
//!
//! The RAVEN *baseline* detector of Table IV is the stock software safety
//! layer in `raven-control::safety` plus the PLC watchdog in
//! `raven-hw::plc`; the experiment runners in `raven-core` score both
//! against the same ground truth.

#![forbid(unsafe_code)]

pub mod batch;
pub mod detector;
pub mod features;
#[cfg(feature = "mutant-hooks")]
pub mod mutants;
pub mod thresholds;

pub use batch::{BatchDetector, SoaFeatures};
pub use detector::{
    shared, Assessment, DetectorConfig, DetectorMode, DynamicDetector, FusionRule,
    GuardInterceptor, Mitigation, NoFaultFreeSamples, SharedDetector,
};
pub use features::InstantFeatures;
#[cfg(feature = "mutant-hooks")]
pub use mutants::DetectorMutation;
pub use thresholds::{DetectionThresholds, ThresholdLearner};
