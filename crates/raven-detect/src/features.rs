//! Detection features: the "instant velocity and acceleration" statistics
//! of the paper's §IV.C.
//!
//! For a candidate DAC command, the detector predicts the next plant state
//! with the real-time model and computes, per positioning axis:
//!
//! * **motor acceleration** — change of motor velocity over one step;
//! * **motor velocity** — predicted next motor velocity;
//! * **joint velocity** — predicted next joint velocity;
//!
//! plus the predicted **end-effector step** (meters over one control
//! period), which the paper's safety rule caps at 1 mm per 1–2 ms.

use raven_dynamics::PlantState;
use raven_kinematics::{ArmConfig, NUM_AXES};
use raven_math::Vec3;
use serde::{Deserialize, Serialize};

/// Per-axis instant features for one candidate command.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InstantFeatures {
    /// |Δ motor velocity| / dt per axis (rad/s²).
    pub motor_accel: [f64; NUM_AXES],
    /// |predicted motor velocity| per axis (rad/s).
    pub motor_vel: [f64; NUM_AXES],
    /// |predicted joint velocity| per axis (rad/s, rad/s, m/s).
    pub joint_vel: [f64; NUM_AXES],
    /// Predicted end-effector displacement over one step (meters).
    pub ee_step: f64,
}

impl InstantFeatures {
    /// Computes features from the current state and the model's one-step
    /// prediction.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn compute(arm: &ArmConfig, current: &PlantState, predicted: &PlantState, dt: f64) -> Self {
        let ee_now = arm.forward(&current.joint_pos()).position;
        Self::compute_with_current_ee(arm, current, predicted, dt, ee_now)
    }

    /// [`InstantFeatures::compute`] with the current state's end-effector
    /// position supplied by the caller.
    ///
    /// The detector's assessment needs FK of the *current* state twice —
    /// once for the one-step `ee_step` feature and once as the start point
    /// of the lookahead rollout. FK is pure, so hoisting it to the caller
    /// and sharing the result is bit-identical to recomputing it (pinned
    /// by a regression test in `tests/`), and saves one trig-heavy
    /// evaluation per armed cycle.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive and finite.
    pub fn compute_with_current_ee(
        arm: &ArmConfig,
        current: &PlantState,
        predicted: &PlantState,
        dt: f64,
        ee_now: Vec3,
    ) -> Self {
        assert!(dt.is_finite() && dt > 0.0, "invalid feature dt {dt}");
        let mv_now = current.motor_vel();
        let mv_next = predicted.motor_vel();
        let jv_next = predicted.joint_vel();
        let mut motor_accel = [0.0; NUM_AXES];
        let mut motor_vel = [0.0; NUM_AXES];
        let mut joint_vel = [0.0; NUM_AXES];
        for i in 0..NUM_AXES {
            motor_accel[i] = ((mv_next[i] - mv_now[i]) / dt).abs();
            motor_vel[i] = mv_next[i].abs();
            joint_vel[i] = jv_next[i].abs();
        }
        let ee_next = arm.forward(&predicted.joint_pos()).position;
        InstantFeatures { motor_accel, motor_vel, joint_vel, ee_step: ee_now.distance(ee_next) }
    }

    /// Iterates the nine (variable, axis) magnitudes in a fixed order:
    /// motor_accel[0..3], motor_vel[0..3], joint_vel[0..3].
    pub fn flattened(&self) -> [f64; 3 * NUM_AXES] {
        [
            self.motor_accel[0],
            self.motor_accel[1],
            self.motor_accel[2],
            self.motor_vel[0],
            self.motor_vel[1],
            self.motor_vel[2],
            self.joint_vel[0],
            self.joint_vel[1],
            self.joint_vel[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raven_dynamics::{PlantParams, RtModel};
    use raven_kinematics::JointState;

    fn setup() -> (ArmConfig, PlantParams, PlantState) {
        let params = PlantParams::raven_ii();
        let arm = ArmConfig::builder().coupling(params.coupling()).build();
        let state = params.rest_state(JointState::new(0.0, 1.4, 0.25));
        (arm, params, state)
    }

    #[test]
    fn rest_prediction_has_small_features() {
        let (arm, params, state) = setup();
        let model = RtModel::new(params);
        let predicted = model.predict(&state, &[0, 0, 0]);
        let f = InstantFeatures::compute(&arm, &state, &predicted, 1e-3);
        // Gravity sag only: everything small.
        for v in f.flattened() {
            assert!(v.is_finite());
        }
        assert!(f.ee_step < 1e-4, "resting arm should not step {}", f.ee_step);
    }

    #[test]
    fn violent_command_produces_large_features() {
        let (arm, params, state) = setup();
        let model = RtModel::new(params);
        let quiet = model.predict(&state, &[100, 0, 0]);
        let violent = model.predict(&state, &[30_000, 0, 0]);
        let fq = InstantFeatures::compute(&arm, &state, &quiet, 1e-3);
        let fv = InstantFeatures::compute(&arm, &state, &violent, 1e-3);
        assert!(fv.motor_accel[0] > 10.0 * fq.motor_accel[0].max(1.0));
        assert!(fv.motor_vel[0] > fq.motor_vel[0]);
    }

    #[test]
    fn features_are_absolute_values() {
        let (arm, params, state) = setup();
        let model = RtModel::new(params);
        let neg = model.predict(&state, &[-30_000, 0, 0]);
        let f = InstantFeatures::compute(&arm, &state, &neg, 1e-3);
        for v in f.flattened() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn flattened_order_is_stable() {
        let f = InstantFeatures {
            motor_accel: [1.0, 2.0, 3.0],
            motor_vel: [4.0, 5.0, 6.0],
            joint_vel: [7.0, 8.0, 9.0],
            ee_step: 0.0,
        };
        assert_eq!(f.flattened(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "invalid feature dt")]
    fn zero_dt_panics() {
        let (arm, _, state) = setup();
        let _ = InstantFeatures::compute(&arm, &state, &state, 0.0);
    }
}
