//! Deliberately-broken detector variants for the mutation kill-suite
//! (`raven-verify`).
//!
//! Only compiled under the `mutant-hooks` cargo feature. Each
//! [`DetectorMutation`] names one seeded defect in the detection or
//! mitigation path — an off-by-one, a dropped fusion term, a disabled
//! block path — and the safety-oracle suite must *kill* every one of them
//! (fail at least one oracle on at least one scenario). A mutant that
//! survives means the oracles have a blind spot exactly where the defect
//! lives.
//!
//! The hooks are wired through `cfg`-paired private helpers on
//! [`crate::DynamicDetector`] and [`crate::GuardInterceptor`]: with the
//! feature off the helpers are trivial pass-throughs and the mutant code
//! does not exist; with the feature on but no mutation installed
//! (`set_mutation(None)`, the default) every helper returns the production
//! value, so an unmutated `mutant-hooks` build behaves identically to a
//! release build. That equivalence is what lets the kill-suite's control
//! arm ("unmutated build passes every oracle") share a binary with the
//! mutant arms.

use serde::{Deserialize, Serialize};

/// One seeded defect in the detector or mitigation path.
///
/// The variants are grouped by the layer they sabotage: detection features
/// and fusion, alarm bookkeeping, then mitigation plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorMutation {
    /// The 1 mm end-effector step limit is applied ×10 too loose, so the
    /// paper's hard safety rule misses every sub-centimeter jump.
    EeLimitTenfold,
    /// The end-effector step check never alarms at all.
    EeCheckDisabled,
    /// The three-way fusion drops its joint-velocity term: alarms on motor
    /// acceleration ∧ motor velocity only.
    FusionDropsJointVel,
    /// Motor-velocity and motor-acceleration features are swapped before
    /// threshold comparison (a classic transposed-index defect).
    SwappedVelAccel,
    /// Threshold comparison is skipped entirely; only the end-effector
    /// check can alarm.
    ThresholdsIgnored,
    /// The `AllThree` fusion rule silently degrades to `AnyOne`: a single
    /// exceedance alarms, flooding clean sessions with false positives.
    FusionBecomesAnyOne,
    /// The guard assesses but never blocks: alarming commands are
    /// forwarded verbatim in every mitigation mode.
    BlockPathDisabled,
    /// The E-STOP mitigation stops requesting the stop: alarms are logged
    /// but the latch is never demanded.
    EstopRequestDropped,
    /// Block-and-hold forgets its cooldown: substitution lasts exactly one
    /// alarming cycle instead of `hold_cooldown_cycles`.
    CooldownIgnored,
    /// Block-and-hold substitutes the *newest* remembered command instead
    /// of the oldest — replaying the attack's own ramp-up tail.
    HoldSubstitutesLatest,
    /// The first-alarm assessment index is recorded off by one, corrupting
    /// every detection-latency measurement downstream.
    FirstAlarmOffByOne,
    /// The alarm counter never increments: verdicts are emitted but the
    /// session summary claims the detector stayed silent.
    AlarmCounterStuck,
}

impl DetectorMutation {
    /// Every mutant, in a fixed order (kill-suites iterate this).
    pub const ALL: [DetectorMutation; 12] = [
        DetectorMutation::EeLimitTenfold,
        DetectorMutation::EeCheckDisabled,
        DetectorMutation::FusionDropsJointVel,
        DetectorMutation::SwappedVelAccel,
        DetectorMutation::ThresholdsIgnored,
        DetectorMutation::FusionBecomesAnyOne,
        DetectorMutation::BlockPathDisabled,
        DetectorMutation::EstopRequestDropped,
        DetectorMutation::CooldownIgnored,
        DetectorMutation::HoldSubstitutesLatest,
        DetectorMutation::FirstAlarmOffByOne,
        DetectorMutation::AlarmCounterStuck,
    ];

    /// Stable dotted identifier (used in kill-suite reports).
    pub fn slug(self) -> &'static str {
        match self {
            DetectorMutation::EeLimitTenfold => "mutant.ee_limit_tenfold",
            DetectorMutation::EeCheckDisabled => "mutant.ee_check_disabled",
            DetectorMutation::FusionDropsJointVel => "mutant.fusion_drops_joint_vel",
            DetectorMutation::SwappedVelAccel => "mutant.swapped_vel_accel",
            DetectorMutation::ThresholdsIgnored => "mutant.thresholds_ignored",
            DetectorMutation::FusionBecomesAnyOne => "mutant.fusion_becomes_any_one",
            DetectorMutation::BlockPathDisabled => "mutant.block_path_disabled",
            DetectorMutation::EstopRequestDropped => "mutant.estop_request_dropped",
            DetectorMutation::CooldownIgnored => "mutant.cooldown_ignored",
            DetectorMutation::HoldSubstitutesLatest => "mutant.hold_substitutes_latest",
            DetectorMutation::FirstAlarmOffByOne => "mutant.first_alarm_off_by_one",
            DetectorMutation::AlarmCounterStuck => "mutant.alarm_counter_stuck",
        }
    }
}

impl std::fmt::Display for DetectorMutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_unique_and_dotted() {
        let mut seen = std::collections::BTreeSet::new();
        for m in DetectorMutation::ALL {
            assert!(m.slug().starts_with("mutant."), "{m}");
            assert!(seen.insert(m.slug()), "duplicate slug {m}");
        }
        assert_eq!(seen.len(), DetectorMutation::ALL.len());
    }

    #[test]
    fn serde_round_trips_every_mutant() {
        for m in DetectorMutation::ALL {
            let json = serde_json::to_string(&m).unwrap();
            let back: DetectorMutation = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
    }
}
