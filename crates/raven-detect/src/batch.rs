//! Fleet-scale detection: M detector sessions assessed per call over
//! structure-of-arrays feature lanes.
//!
//! The paper's detection budget is per control cycle per robot; a
//! teleoperation fleet multiplies it by the number of concurrent
//! sessions. [`BatchDetector`] amortizes that product: one
//! [`BatchModel`] steps every session's estimator lane together, and
//! the per-axis instant features land in dim-major parallel arrays
//! (`row[axis * lanes + lane]`) with the threshold checks swept across
//! lanes.
//!
//! Per-session semantics are preserved exactly: each lane carries its
//! own mode state (learning/armed thresholds), measurement tracker,
//! and alarm counters, and every lane's assessment is bit-identical to
//! an independent [`DynamicDetector`] over the same inputs — pinned by
//! the proptest equivalence suite in `tests/batch_equiv.rs`. Two
//! scalar-only concerns stay out of the batch: threshold *learning*
//! (train scalar, arm lanes with the learned thresholds) and the
//! mitigation actuation (a fleet supervisor reads the per-lane verdicts
//! and drives each session's guard).
//!
//! [`DynamicDetector`]: crate::detector::DynamicDetector

use raven_dynamics::batch::BatchModel;
use raven_dynamics::RtModel;
use raven_kinematics::{ArmConfig, MotorState, NUM_AXES};
use raven_math::Vec3;

use crate::detector::{measured_state, Assessment, DetectorConfig, FusionRule, Mitigation};
use crate::detector::{DetectorMode, ModeState};
use crate::features::InstantFeatures;
use crate::thresholds::DetectionThresholds;

/// Per-session state carried alongside the shared SoA storage.
#[derive(Debug)]
struct SessionLane {
    arm: ArmConfig,
    mode: ModeState,
    tracked: Option<raven_dynamics::PlantState>,
    last_mpos: Option<MotorState>,
    last_jpos: Option<[f64; NUM_AXES]>,
    assessments: u64,
    alarms: u64,
    first_alarm_assessment: Option<u64>,
    estop_requested: bool,
}

/// Borrowed view of the batched feature lanes after an
/// [`BatchDetector::assess_lanes`] call. The three per-axis rows are
/// dim-major (`row[axis * lanes + lane]`); `ee_step` is one value per
/// lane. Lanes that were skipped (no measurement synced) keep their
/// previous values.
#[derive(Debug, Clone, Copy)]
pub struct SoaFeatures<'a> {
    /// |Δ motor velocity| / dt rows (rad/s²).
    pub motor_accel: &'a [f64],
    /// |predicted motor velocity| rows (rad/s).
    pub motor_vel: &'a [f64],
    /// |predicted joint velocity| rows (rad/s, rad/s, m/s).
    pub joint_vel: &'a [f64],
    /// Predicted end-effector displacement per lane (meters).
    pub ee_step: &'a [f64],
}

/// M detector sessions over one SoA estimator batch.
///
/// # Example
///
/// ```
/// use raven_detect::{BatchDetector, DetectorConfig, DynamicDetector};
/// use raven_dynamics::{PlantParams, RtModel};
/// use raven_kinematics::{ArmConfig, JointState};
///
/// let params = PlantParams::raven_ii();
/// let arm = ArmConfig::builder().coupling(params.coupling()).build();
/// let model = RtModel::new(params.perturbed(1, 0.02));
/// let config = DetectorConfig::default();
///
/// let mut batch =
///     BatchDetector::from_models(&[arm.clone(), arm.clone()], &[model.clone(), model], config);
/// let mpos = params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
/// batch.sync_lane(0, mpos);
/// batch.sync_lane(1, mpos);
/// let verdicts = batch.assess_lanes(&[[200, 0, 0], [150, 0, 0]]);
/// assert!(verdicts.iter().all(|v| v.is_some()));
/// ```
#[derive(Debug)]
pub struct BatchDetector {
    config: DetectorConfig,
    model: BatchModel,
    lanes: Vec<SessionLane>,
    /// SoA feature rows, dim-major (`NUM_AXES * lanes` each).
    motor_accel: Vec<f64>,
    motor_vel: Vec<f64>,
    joint_vel: Vec<f64>,
    /// End-effector step per lane.
    ee_step: Vec<f64>,
    /// Current end-effector position per lane, stashed by the one-step
    /// pass so the lookahead pass reuses it (FK is pure, so sharing the
    /// evaluation is bit-identical to recomputing it).
    ee_now: Vec<Vec3>,
    /// Reused per-call verdict storage, one slot per lane.
    verdicts: Vec<Option<Assessment>>,
    /// Reused per-call engagement mask: lanes with a command *and* a
    /// synced measurement this cycle.
    engaged: Vec<bool>,
}

impl BatchDetector {
    /// Builds one lane per (arm, model) pair, every lane in learning
    /// mode. All models must share one integrator configuration (the
    /// batch dispatches the step once for every lane).
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths, or if
    /// the model configurations disagree.
    pub fn from_models(arms: &[ArmConfig], models: &[RtModel], config: DetectorConfig) -> Self {
        assert!(!models.is_empty(), "batch detector needs at least one session");
        assert_eq!(arms.len(), models.len(), "one arm config per model");
        let shared = models[0].config();
        for m in models {
            assert_eq!(m.config(), shared, "all lanes must share one integrator configuration");
        }
        let params: Vec<raven_dynamics::PlantParams> = models.iter().map(|m| *m.params()).collect();
        let m = models.len();
        BatchDetector {
            config,
            model: BatchModel::with_params(&params, shared),
            lanes: arms
                .iter()
                .map(|arm| SessionLane {
                    arm: arm.clone(),
                    mode: ModeState::Learning,
                    tracked: None,
                    last_mpos: None,
                    last_jpos: None,
                    assessments: 0,
                    alarms: 0,
                    first_alarm_assessment: None,
                    estop_requested: false,
                })
                .collect(),
            motor_accel: vec![0.0; NUM_AXES * m],
            motor_vel: vec![0.0; NUM_AXES * m],
            joint_vel: vec![0.0; NUM_AXES * m],
            ee_step: vec![0.0; m],
            ee_now: vec![Vec3::default(); m],
            verdicts: vec![None; m],
            engaged: vec![false; m],
        }
    }

    /// Number of sessions in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The shared detector configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// One lane's operating mode.
    pub fn lane_mode(&self, lane: usize) -> DetectorMode {
        match self.lanes[lane].mode {
            ModeState::Learning => DetectorMode::Learning,
            ModeState::Armed(_) => DetectorMode::Armed,
        }
    }

    /// Arms one lane with learned thresholds (typically from a scalar
    /// training campaign — the batch itself never learns).
    pub fn arm_lane(&mut self, lane: usize, thresholds: DetectionThresholds) {
        self.lanes[lane].mode = ModeState::Armed(thresholds);
    }

    /// Feeds one lane's measured motor positions for this cycle — the
    /// same differencing/coupling reconstruction as
    /// `DynamicDetector::sync_measurement`, via the shared helper.
    pub fn sync_lane(&mut self, lane: usize, mpos: MotorState) {
        let l = &mut self.lanes[lane];
        l.tracked =
            Some(measured_state(&l.arm, self.config.dt, &mut l.last_mpos, &mut l.last_jpos, mpos));
    }

    /// Clears one lane's per-session state (counters, tracked
    /// measurement) while keeping its thresholds — the batched
    /// equivalent of `DynamicDetector::reset_session`, scoped to a
    /// single lane so the rest of the fleet is untouched.
    pub fn reset_session(&mut self, lane: usize) {
        let l = &mut self.lanes[lane];
        l.tracked = None;
        l.last_mpos = None;
        l.last_jpos = None;
        l.assessments = 0;
        l.alarms = 0;
        l.first_alarm_assessment = None;
        l.estop_requested = false;
    }

    /// Recycles one lane for a newly admitted session: rebinds the
    /// estimator lane to the session's model parameters, installs its
    /// arm config, clears all per-session state, and arms it with the
    /// session's thresholds (or leaves it learning when `None`). The
    /// other lanes' SoA columns are untouched, so sibling trajectories
    /// stay bitwise identical — the dynamic arrive/retire counterpart
    /// of constructing a fresh batch.
    ///
    /// # Panics
    ///
    /// Panics if the model's integrator configuration differs from the
    /// batch's shared configuration.
    pub fn admit_lane(
        &mut self,
        lane: usize,
        arm: ArmConfig,
        model: &RtModel,
        thresholds: Option<DetectionThresholds>,
    ) {
        assert_eq!(
            model.config(),
            self.model.config(),
            "admitted lanes must share the batch integrator configuration"
        );
        self.model.set_lane_params(lane, *model.params());
        self.model.load_state(lane, &raven_dynamics::PlantState::default());
        self.model.set_torque(lane, &[0.0; NUM_AXES]);
        let l = &mut self.lanes[lane];
        l.arm = arm;
        l.mode = match thresholds {
            Some(t) => ModeState::Armed(t),
            None => ModeState::Learning,
        };
        self.reset_session(lane);
    }

    /// Retires one lane: clears its per-session state, disarms it, and
    /// parks the estimator lane at the benign rest state with zero
    /// torque, ready for [`admit_lane`](Self::admit_lane) to recycle.
    pub fn retire_lane(&mut self, lane: usize) {
        self.lanes[lane].mode = ModeState::Learning;
        self.reset_session(lane);
        self.model.load_state(lane, &raven_dynamics::PlantState::default());
        self.model.set_torque(lane, &[0.0; NUM_AXES]);
    }

    /// Assesses one candidate DAC command per lane, stepping every
    /// session's estimator together. Returns one verdict slot per lane;
    /// `None` where the lane has no synced measurement yet. Lanes in
    /// learning mode return non-alarming assessments (observation
    /// happens on the scalar trainer).
    ///
    /// Allocation-free after construction: the SoA rows, integrator
    /// scratch, and verdict storage are all reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `dacs` does not supply exactly one command per lane.
    pub fn assess_lanes(&mut self, dacs: &[[i16; NUM_AXES]]) -> &[Option<Assessment>] {
        let m = self.lanes.len();
        assert_eq!(dacs.len(), m, "one DAC command per lane");
        self.assess_impl(&|l| Some(dacs[l]))
    }

    /// [`assess_lanes`](Self::assess_lanes) with per-lane participation:
    /// `None` slots are *parked* this cycle — no assessment, no counter
    /// movement, verdict `None` — which is how the fleet multiplexer
    /// runs a batch where only a subset of sessions is active. Parked
    /// (and unsynced) lanes are still stepped with the batch, but are
    /// re-loaded with the benign rest state and zero torque on every
    /// call, so an idle lane can never drift toward non-finite values
    /// over a long soak and never influences an engaged sibling (lanes
    /// are arithmetically independent).
    ///
    /// # Panics
    ///
    /// Panics if `dacs` does not supply exactly one slot per lane.
    pub fn assess_lanes_masked(
        &mut self,
        dacs: &[Option<[i16; NUM_AXES]>],
    ) -> &[Option<Assessment>] {
        let m = self.lanes.len();
        assert_eq!(dacs.len(), m, "one DAC slot per lane");
        self.assess_impl(&|l| dacs[l])
    }

    /// Shared body of the two assessment entry points. `dyn Fn` keeps a
    /// single monomorphization, so the masked path runs the *same*
    /// machine code as the plain path — engaged lanes are bit-identical
    /// between the two by construction.
    fn assess_impl(
        &mut self,
        dac_of: &dyn Fn(usize) -> Option<[i16; NUM_AXES]>,
    ) -> &[Option<Assessment>] {
        let m = self.lanes.len();
        for l in 0..m {
            self.engaged[l] = match (dac_of(l), self.lanes[l].tracked) {
                (Some(dac), Some(current)) => {
                    self.model.load_state(l, &current);
                    self.model.set_dac(l, &dac);
                    true
                }
                _ => {
                    // Parked or unsynced: reload rest state + zero torque
                    // each call so the still-stepped lane stays finite.
                    self.model.load_state(l, &raven_dynamics::PlantState::default());
                    self.model.set_torque(l, &[0.0; NUM_AXES]);
                    false
                }
            };
        }
        self.model.step_lanes();
        // One-step features per lane, scattered into the SoA rows. The
        // per-lane math is the scalar helper, so each lane is
        // bit-identical to an independent detector.
        for (l, lane) in self.lanes.iter().enumerate() {
            if !self.engaged[l] {
                self.verdicts[l] = None;
                continue;
            }
            let Some(current) = lane.tracked else {
                self.verdicts[l] = None;
                continue;
            };
            let predicted = self.model.state(l);
            let ee_now = lane.arm.forward(&current.joint_pos()).position;
            self.ee_now[l] = ee_now;
            let features = InstantFeatures::compute_with_current_ee(
                &lane.arm,
                &current,
                &predicted,
                self.config.dt,
                ee_now,
            );
            for i in 0..NUM_AXES {
                self.motor_accel[i * m + l] = features.motor_accel[i];
                self.motor_vel[i * m + l] = features.motor_vel[i];
                self.joint_vel[i * m + l] = features.joint_vel[i];
            }
            self.ee_step[l] = features.ee_step;
            // Stash the partial verdict; ee_step may still grow below.
            self.verdicts[l] =
                Some(Assessment { features, threshold_alarm: false, ee_alarm: false });
        }
        // Lookahead rollout: the whole batch re-steps under the latched
        // torques, then each lane checks its cumulative EE displacement.
        if self.config.lookahead_steps > 1 {
            for _ in 1..self.config.lookahead_steps {
                self.model.step_lanes();
            }
            for (l, lane) in self.lanes.iter().enumerate() {
                if !self.engaged[l] {
                    continue;
                }
                let Some(assessment) = &mut self.verdicts[l] else { continue };
                let ee_now = self.ee_now[l];
                let rolled = self.model.state(l);
                let end = lane.arm.forward(&rolled.joint_pos()).position;
                assessment.features.ee_step = assessment.features.ee_step.max(ee_now.distance(end));
                self.ee_step[l] = assessment.features.ee_step;
            }
        }
        // Threshold sweep + per-lane alarm accounting.
        for (l, lane) in self.lanes.iter_mut().enumerate() {
            let Some(assessment) = &mut self.verdicts[l] else { continue };
            let ModeState::Armed(thresholds) = lane.mode else { continue };
            assessment.threshold_alarm = match self.config.fusion {
                FusionRule::AllThree => thresholds.fused_alarm(&assessment.features),
                FusionRule::AnyOne => thresholds.any_alarm(&assessment.features),
            };
            assessment.ee_alarm = assessment.features.ee_step > self.config.ee_step_limit;
            lane.assessments += 1;
            if assessment.threshold_alarm || assessment.ee_alarm {
                lane.alarms += 1;
                let first = lane.assessments;
                lane.first_alarm_assessment.get_or_insert(first);
                if self.config.mitigation == Mitigation::EStop {
                    lane.estop_requested = true;
                }
            }
        }
        &self.verdicts
    }

    /// The batched feature lanes from the most recent assessment.
    pub fn soa_features(&self) -> SoaFeatures<'_> {
        SoaFeatures {
            motor_accel: &self.motor_accel,
            motor_vel: &self.motor_vel,
            joint_vel: &self.joint_vel,
            ee_step: &self.ee_step,
        }
    }

    /// Commands assessed while armed, per lane.
    pub fn lane_assessments(&self, lane: usize) -> u64 {
        self.lanes[lane].assessments
    }

    /// Alarms raised while armed, per lane.
    pub fn lane_alarms(&self, lane: usize) -> u64 {
        self.lanes[lane].alarms
    }

    /// Assessment index (1-based) of the lane's first alarm, if any.
    pub fn lane_first_alarm_assessment(&self, lane: usize) -> Option<u64> {
        self.lanes[lane].first_alarm_assessment
    }

    /// `true` when the lane's E-STOP mitigation has been requested.
    pub fn lane_estop_requested(&self, lane: usize) -> bool {
        self.lanes[lane].estop_requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DynamicDetector;
    use raven_dynamics::PlantParams;
    use raven_kinematics::JointState;

    fn session(seed: u64) -> (ArmConfig, RtModel, PlantParams) {
        let params = PlantParams::raven_ii();
        let arm = ArmConfig::builder().coupling(params.coupling()).build();
        let model = RtModel::new(params.perturbed(seed, 0.02));
        (arm, model, params)
    }

    fn trained_thresholds(
        arm: &ArmConfig,
        model: &RtModel,
        params: &PlantParams,
    ) -> DetectionThresholds {
        let mut det = DynamicDetector::new(arm.clone(), model.clone(), DetectorConfig::default());
        let coupling = params.coupling();
        for k in 0..1500u64 {
            let t = k as f64 * 1e-3;
            let j = JointState::new(
                0.1 * (2.0 * t).sin(),
                1.4 + 0.08 * (1.5 * t).cos(),
                0.25 + 0.01 * t.sin(),
            );
            det.sync_measurement(coupling.joints_to_motors(&j));
            det.assess(&[200, 150, -100]);
        }
        det.end_learning_run();
        det.arm().expect("fault-free samples observed");
        *det.thresholds().expect("armed")
    }

    #[test]
    fn batched_lanes_match_independent_scalar_detectors() {
        let config = DetectorConfig::default();
        let sessions: Vec<_> = (1..4).map(session).collect();
        let thresholds: Vec<_> =
            sessions.iter().map(|(a, m, p)| trained_thresholds(a, m, p)).collect();

        let arms: Vec<_> = sessions.iter().map(|(a, _, _)| a.clone()).collect();
        let models: Vec<_> = sessions.iter().map(|(_, m, _)| m.clone()).collect();
        let mut batch = BatchDetector::from_models(&arms, &models, config);
        let mut scalars: Vec<_> = sessions
            .iter()
            .map(|(a, m, _)| DynamicDetector::new(a.clone(), m.clone(), config))
            .collect();
        for (l, t) in thresholds.iter().enumerate() {
            batch.arm_lane(l, *t);
            scalars[l].arm_with(*t);
            assert_eq!(batch.lane_mode(l), DetectorMode::Armed);
        }

        let coupling = sessions[0].2.coupling();
        for k in 0..40u64 {
            let t = k as f64 * 1e-3;
            for (l, scalar) in scalars.iter_mut().enumerate() {
                let j = JointState::new(
                    0.1 * (2.0 * t).sin() + 0.01 * l as f64,
                    1.4 + 0.05 * (3.0 * t).cos(),
                    0.25,
                );
                let mpos = coupling.joints_to_motors(&j);
                scalar.sync_measurement(mpos);
                batch.sync_lane(l, mpos);
            }
            let dacs: Vec<[i16; NUM_AXES]> =
                (0..scalars.len()).map(|l| [400 + 100 * l as i16, -200, 150]).collect();
            let verdicts = batch.assess_lanes(&dacs).to_vec();
            for (l, scalar) in scalars.iter_mut().enumerate() {
                let expected = scalar.assess(&dacs[l]).expect("synced");
                let got = verdicts[l].expect("synced lane");
                assert_eq!(got, expected, "lane {l} diverged from scalar at cycle {k}");
            }
        }
        for (l, scalar) in scalars.iter().enumerate() {
            assert_eq!(batch.lane_assessments(l), scalar.assessments());
            assert_eq!(batch.lane_alarms(l), scalar.alarms());
        }
    }

    #[test]
    fn unsynced_lane_yields_none_and_does_not_count() {
        let (arm, model, params) = session(1);
        let config = DetectorConfig::default();
        let mut batch =
            BatchDetector::from_models(&[arm.clone(), arm], &[model.clone(), model], config);
        let mpos = params.coupling().joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
        batch.sync_lane(0, mpos);
        let verdicts = batch.assess_lanes(&[[100, 0, 0], [100, 0, 0]]);
        assert!(verdicts[0].is_some());
        assert!(verdicts[1].is_none());
        assert_eq!(batch.lane_assessments(1), 0);
    }

    #[test]
    fn masked_assessment_parks_lanes_without_perturbing_siblings() {
        // An engaged lane in a masked batch is bit-identical to the same
        // lane in a fully-engaged batch, regardless of what its siblings
        // do; parked lanes don't assess, don't count, and resume cleanly.
        let (arm, model, params) = session(3);
        let thresholds = trained_thresholds(&arm, &model, &params);
        let config = DetectorConfig::default();
        let mut masked = BatchDetector::from_models(
            &[arm.clone(), arm.clone()],
            &[model.clone(), model.clone()],
            config,
        );
        let mut solo = BatchDetector::from_models(
            std::slice::from_ref(&arm),
            std::slice::from_ref(&model),
            config,
        );
        masked.arm_lane(0, thresholds);
        masked.arm_lane(1, thresholds);
        solo.arm_lane(0, thresholds);

        let coupling = params.coupling();
        for k in 0..30u64 {
            let t = k as f64 * 1e-3;
            let j = JointState::new(0.1 * (2.0 * t).sin(), 1.4 + 0.05 * (3.0 * t).cos(), 0.25);
            let mpos = coupling.joints_to_motors(&j);
            masked.sync_lane(0, mpos);
            solo.sync_lane(0, mpos);
            let dac = [400, -200, 150];
            // Lane 1 alternates active/parked; lane 0 never parks.
            let lane1 = if k % 3 == 0 {
                masked.sync_lane(1, mpos);
                Some(dac)
            } else {
                None
            };
            let got = masked.assess_lanes_masked(&[Some(dac), lane1]).to_vec();
            let expected = solo.assess_lanes(&[dac])[0];
            assert_eq!(got[0], expected, "engaged lane diverged at cycle {k}");
            assert_eq!(got[1].is_some(), lane1.is_some());
        }
        assert_eq!(masked.lane_assessments(0), solo.lane_assessments(0));
        assert_eq!(masked.lane_assessments(1), 10);
    }

    #[test]
    fn admit_retire_recycles_a_lane_onto_a_new_session() {
        let (arm_a, model_a, params) = session(4);
        let (arm_b, model_b, _) = session(5);
        let thresholds = trained_thresholds(&arm_a, &model_a, &params);
        let config = DetectorConfig::default();
        let mut batch = BatchDetector::from_models(
            &[arm_a.clone(), arm_a.clone()],
            &[model_a.clone(), model_a.clone()],
            config,
        );
        batch.arm_lane(0, thresholds);
        batch.arm_lane(1, thresholds);
        let mut fresh = BatchDetector::from_models(
            std::slice::from_ref(&arm_b),
            std::slice::from_ref(&model_b),
            config,
        );
        fresh.arm_lane(0, thresholds);

        let coupling = params.coupling();
        let mpos = coupling.joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
        batch.sync_lane(0, mpos);
        batch.sync_lane(1, mpos);
        batch.assess_lanes(&[[300, 0, 0], [300, 0, 0]]);
        assert_eq!(batch.lane_assessments(1), 1);

        // Session on lane 1 leaves; a new session (different model) takes
        // the lane. The recycled lane must match a from-scratch batch of
        // the new session bit-for-bit.
        batch.retire_lane(1);
        assert_eq!(batch.lane_mode(1), DetectorMode::Learning);
        assert_eq!(batch.lane_assessments(1), 0);
        batch.admit_lane(1, arm_b, &model_b, Some(thresholds));
        assert_eq!(batch.lane_mode(1), DetectorMode::Armed);

        for k in 0..20u64 {
            let t = k as f64 * 1e-3;
            let j = JointState::new(0.08 * (2.5 * t).sin(), 1.42, 0.24);
            let m = coupling.joints_to_motors(&j);
            batch.sync_lane(0, mpos);
            batch.sync_lane(1, m);
            fresh.sync_lane(0, m);
            let got = batch.assess_lanes(&[[200, 0, 0], [500, -100, 50]]).to_vec();
            let expected = fresh.assess_lanes(&[[500, -100, 50]])[0];
            assert_eq!(got[1], expected, "recycled lane diverged at cycle {k}");
        }
        assert_eq!(batch.lane_assessments(1), fresh.lane_assessments(0));
    }

    #[test]
    #[should_panic(expected = "integrator configuration")]
    fn admitting_a_mismatched_model_config_panics() {
        let (arm, model, _) = session(6);
        let mut batch = BatchDetector::from_models(
            std::slice::from_ref(&arm),
            std::slice::from_ref(&model),
            DetectorConfig::default(),
        );
        let other = RtModel::with_config(
            *model.params(),
            raven_dynamics::RtModelConfig { step_size: 5e-4, ..model.config() },
        );
        batch.admit_lane(0, arm, &other, None);
    }

    #[test]
    fn estop_flag_is_per_lane() {
        let (arm, model, params) = session(2);
        let thresholds = trained_thresholds(&arm, &model, &params);
        let config = DetectorConfig::default();
        let mut batch =
            BatchDetector::from_models(&[arm.clone(), arm], &[model.clone(), model], config);
        batch.arm_lane(0, thresholds);
        batch.arm_lane(1, thresholds);
        let coupling = params.coupling();
        let calm = coupling.joints_to_motors(&JointState::new(0.0, 1.4, 0.25));
        batch.sync_lane(0, calm);
        batch.sync_lane(1, calm);
        batch.assess_lanes(&[[150, 0, 0], [150, 0, 0]]);
        // Lane 1 sees a runaway measurement + saturating command.
        let mut hot = calm;
        hot.angles[0] += 0.05;
        batch.sync_lane(0, calm);
        batch.sync_lane(1, hot);
        let verdicts = batch.assess_lanes(&[[150, 0, 0], [32_000, 0, 0]]);
        assert!(!verdicts[0].expect("lane 0").alarm());
        assert!(verdicts[1].expect("lane 1").alarm());
        assert!(!batch.lane_estop_requested(0));
        assert!(batch.lane_estop_requested(1));
        assert_eq!(batch.lane_first_alarm_assessment(1), Some(2));
    }
}
