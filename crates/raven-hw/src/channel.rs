//! The USB write/read paths and their interceptor chain — the reproduction's
//! analog of the Linux dynamic-linking (`LD_PRELOAD`) hook the paper's
//! malware uses.
//!
//! In the paper, the malicious shared library wraps the `write(2)` system
//! call: every buffer the control software sends to the USB boards first
//! passes through the wrapper, which may log it, mutate bytes in place, or
//! forward it unchanged (Fig. 4). [`WriteInterceptor`] captures exactly that
//! contract: interceptors see the raw bytes *after* the software safety
//! checks and *before* the board — the TOCTOU window of §III.
//!
//! The same hook point hosts the defense: the paper argues the detector
//! belongs "at lower layers of control structure and just before the
//! commands are going to be executed on the physical robot" (§IV.C), so the
//! dynamic-model guard in `raven-detect` is installed as the *last*
//! interceptor in the chain — downstream of any malware.

use simbus::SimTime;

/// Metadata an interceptor can inspect, mirroring what the paper's wrapper
/// checks before acting ("checking the process name and the file
/// descriptor", §III.C.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteContext {
    /// Virtual time of the write.
    pub time: SimTime,
    /// Monotonic sequence number of the write on this channel.
    pub seq: u64,
    /// Name of the writing process.
    pub process: &'static str,
    /// File descriptor being written.
    pub fd: i32,
}

/// What an interceptor decided to do with a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAction {
    /// Deliver the (possibly mutated) buffer downstream.
    Forward,
    /// Suppress the write entirely; downstream sees nothing.
    Drop,
}

/// A hook on the USB write path.
///
/// Implementations may mutate `buf` in place (the injection attack), copy it
/// out (the eavesdropping attack), or veto delivery (the detector's
/// mitigation). Returning [`WriteAction::Drop`] stops the chain: later
/// interceptors do not run, matching a wrapper that never calls the real
/// `write`.
///
/// `Send` so a whole rig (and any `Simulation` owning one) can migrate
/// between fleet worker threads.
pub trait WriteInterceptor: std::fmt::Debug + Send {
    /// Inspects and possibly mutates one outgoing buffer.
    fn on_write(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;
}

/// A hook on the USB read (feedback) path. `Send` for the same reason as
/// [`WriteInterceptor`]: fleet workers move rigs across threads.
pub trait ReadInterceptor: std::fmt::Debug + Send {
    /// Inspects and possibly mutates one incoming buffer.
    fn on_read(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext);

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;
}

/// Outcome of pushing one buffer through the write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The delivered bytes, or `None` if an interceptor dropped the write.
    pub delivered: Option<Vec<u8>>,
    /// Name of the interceptor that dropped the write, if any.
    pub dropped_by: Option<String>,
    /// Whether any interceptor changed the bytes relative to the input.
    pub mutated: bool,
}

/// The USB write path: an ordered interceptor chain in front of the board.
///
/// # Example
///
/// ```
/// use raven_hw::channel::{UsbChannel, WriteAction, WriteContext, WriteInterceptor};
/// use simbus::SimTime;
///
/// #[derive(Debug)]
/// struct Nop;
/// impl WriteInterceptor for Nop {
///     fn on_write(&mut self, _buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
///         WriteAction::Forward
///     }
///     fn name(&self) -> &str { "nop" }
/// }
///
/// let mut ch = UsbChannel::new();
/// ch.install(Box::new(Nop));
/// let out = ch.write(vec![1, 2, 3], SimTime::ZERO);
/// assert_eq!(out.delivered, Some(vec![1, 2, 3]));
/// ```
#[derive(Debug, Default)]
pub struct UsbChannel {
    write_chain: Vec<Box<dyn WriteInterceptor>>,
    read_chain: Vec<Box<dyn ReadInterceptor>>,
    seq: u64,
    writes: u64,
    drops: u64,
    mutations: u64,
}

impl UsbChannel {
    /// Process name the RAVEN control software presents.
    pub const PROCESS: &'static str = "r2_control";
    /// File descriptor of the USB board device node.
    pub const BOARD_FD: i32 = 7;

    /// Creates an empty channel (no interceptors — the clean system).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a write interceptor to the end of the chain (runs last).
    pub fn install(&mut self, interceptor: Box<dyn WriteInterceptor>) {
        self.write_chain.push(interceptor);
    }

    /// Prepends a write interceptor (runs first — how `LD_PRELOAD` shadows
    /// every later hook).
    pub fn install_first(&mut self, interceptor: Box<dyn WriteInterceptor>) {
        self.write_chain.insert(0, interceptor);
    }

    /// Appends a read interceptor.
    pub fn install_read(&mut self, interceptor: Box<dyn ReadInterceptor>) {
        self.read_chain.push(interceptor);
    }

    /// Removes every interceptor whose name matches.
    pub fn uninstall(&mut self, name: &str) {
        self.write_chain.retain(|i| i.name() != name);
        self.read_chain.retain(|i| i.name() != name);
    }

    /// Names of the installed write interceptors, in execution order.
    pub fn write_chain_names(&self) -> Vec<&str> {
        self.write_chain.iter().map(|i| i.name()).collect()
    }

    /// Pushes a buffer through the write chain.
    pub fn write(&mut self, buf: Vec<u8>, time: SimTime) -> WriteOutcome {
        let ctx = WriteContext { time, seq: self.seq, process: Self::PROCESS, fd: Self::BOARD_FD };
        self.seq += 1;
        self.writes += 1;

        let original = buf.clone();
        let mut current = buf;
        for interceptor in &mut self.write_chain {
            match interceptor.on_write(&mut current, &ctx) {
                WriteAction::Forward => {}
                WriteAction::Drop => {
                    self.drops += 1;
                    let mutated = current != original;
                    if mutated {
                        self.mutations += 1;
                    }
                    return WriteOutcome {
                        delivered: None,
                        dropped_by: Some(interceptor.name().to_string()),
                        mutated,
                    };
                }
            }
        }
        let mutated = current != original;
        if mutated {
            self.mutations += 1;
        }
        WriteOutcome { delivered: Some(current), dropped_by: None, mutated }
    }

    /// Pushes a feedback buffer through the read chain, returning the bytes
    /// the control software ultimately sees.
    pub fn read(&mut self, buf: Vec<u8>, time: SimTime) -> Vec<u8> {
        let ctx = WriteContext { time, seq: self.seq, process: Self::PROCESS, fd: Self::BOARD_FD };
        let mut current = buf;
        for interceptor in &mut self.read_chain {
            interceptor.on_read(&mut current, &ctx);
        }
        current
    }

    /// Total writes attempted.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Writes suppressed by an interceptor.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Writes whose bytes were changed in flight.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct AddOne;
    impl WriteInterceptor for AddOne {
        fn on_write(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
            for b in buf.iter_mut() {
                *b = b.wrapping_add(1);
            }
            WriteAction::Forward
        }
        fn name(&self) -> &str {
            "add-one"
        }
    }

    #[derive(Debug)]
    struct DropAll;
    impl WriteInterceptor for DropAll {
        fn on_write(&mut self, _buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
            WriteAction::Drop
        }
        fn name(&self) -> &str {
            "drop-all"
        }
    }

    #[derive(Debug)]
    struct SeqRecorder(Vec<u64>);
    impl WriteInterceptor for SeqRecorder {
        fn on_write(&mut self, _buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
            self.0.push(ctx.seq);
            WriteAction::Forward
        }
        fn name(&self) -> &str {
            "seq-recorder"
        }
    }

    #[test]
    fn empty_chain_forwards_unchanged() {
        let mut ch = UsbChannel::new();
        let out = ch.write(vec![1, 2, 3], SimTime::ZERO);
        assert_eq!(out.delivered, Some(vec![1, 2, 3]));
        assert!(!out.mutated);
        assert_eq!(ch.writes(), 1);
        assert_eq!(ch.drops(), 0);
    }

    #[test]
    fn interceptors_run_in_order_and_compose() {
        let mut ch = UsbChannel::new();
        ch.install(Box::new(AddOne));
        ch.install(Box::new(AddOne));
        let out = ch.write(vec![10], SimTime::ZERO);
        assert_eq!(out.delivered, Some(vec![12]));
        assert!(out.mutated);
        assert_eq!(ch.mutations(), 1);
    }

    #[test]
    fn install_first_runs_before_existing() {
        #[derive(Debug)]
        struct FailIfNotFirst;
        impl WriteInterceptor for FailIfNotFirst {
            fn on_write(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
                assert_eq!(buf[0], 10, "must see the original bytes");
                WriteAction::Forward
            }
            fn name(&self) -> &str {
                "first"
            }
        }
        let mut ch = UsbChannel::new();
        ch.install(Box::new(AddOne));
        ch.install_first(Box::new(FailIfNotFirst));
        assert_eq!(ch.write_chain_names(), vec!["first", "add-one"]);
        let out = ch.write(vec![10], SimTime::ZERO);
        assert_eq!(out.delivered, Some(vec![11]));
    }

    #[test]
    fn drop_stops_the_chain() {
        let mut ch = UsbChannel::new();
        ch.install(Box::new(DropAll));
        ch.install(Box::new(AddOne)); // must never run
        let out = ch.write(vec![1], SimTime::ZERO);
        assert_eq!(out.delivered, None);
        assert_eq!(out.dropped_by.as_deref(), Some("drop-all"));
        assert_eq!(ch.drops(), 1);
    }

    #[test]
    fn uninstall_by_name() {
        let mut ch = UsbChannel::new();
        ch.install(Box::new(AddOne));
        ch.install(Box::new(DropAll));
        ch.uninstall("drop-all");
        assert_eq!(ch.write_chain_names(), vec!["add-one"]);
        assert!(ch.write(vec![0], SimTime::ZERO).delivered.is_some());
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut ch = UsbChannel::new();
        ch.install(Box::new(SeqRecorder(Vec::new())));
        for _ in 0..5 {
            ch.write(vec![0], SimTime::ZERO);
        }
        // Recorder is boxed inside; verify indirectly via counters.
        assert_eq!(ch.writes(), 5);
    }

    #[test]
    fn read_chain_mutates_feedback() {
        #[derive(Debug)]
        struct Zero;
        impl ReadInterceptor for Zero {
            fn on_read(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) {
                buf.fill(0);
            }
            fn name(&self) -> &str {
                "zero"
            }
        }
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(Zero));
        assert_eq!(ch.read(vec![1, 2, 3], SimTime::ZERO), vec![0, 0, 0]);
        ch.uninstall("zero");
        assert_eq!(ch.read(vec![1, 2, 3], SimTime::ZERO), vec![1, 2, 3]);
    }
}
