//! Byte-exact USB packet formats.
//!
//! The attack in the paper works because the USB packets between the control
//! software and the I/O boards *leak the robot's operational state*: "Byte 0
//! switches among 8 different values in a surgical run whereas other bytes
//! either stay constant or switch between many values … the fifth bit of
//! Byte 0 might be the watchdog signal … the values 31 (0x1F) or 15 (0x0F)
//! in Byte 0 indicate that the robot is engaged and in operation (in the
//! 'Pedal Down' state)" (§III.B.2, Figs. 5–6).
//!
//! Command packets are 18 bytes:
//!
//! ```text
//! byte 0      : state nibble (low 4 bits) | watchdog bit (bit 4)
//! bytes 1..17 : 8 × i16 little-endian DAC words (channels 0–7)
//! byte 17     : additive checksum of bytes 0..17
//! ```
//!
//! Crucially — and this is the vulnerability the paper exploits — the USB
//! boards *do not verify* the checksum on receipt ("the integrity of the
//! packets is not checked after the USB boards receive them", §III.B.3).
//! [`UsbCommandPacket::decode_unchecked`] models the board's behavior;
//! [`UsbCommandPacket::decode_verified`] exists but nothing in the stock pipeline
//! calls it.

use serde::{Deserialize, Serialize};

/// Operational state of the robot (Fig. 1(c) of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RobotState {
    /// Emergency stop: PLC holds the brakes, software halted.
    #[default]
    EStop,
    /// Initialization/homing after the start button.
    Init,
    /// Ready for teleoperation, brakes engaged.
    PedalUp,
    /// Foot pedal pressed: brakes released, console drives the arms.
    PedalDown,
}

impl RobotState {
    /// The state nibble placed in Byte 0 of every USB packet.
    ///
    /// The concrete values make Byte 0 "switch among 4 values" (8 with the
    /// watchdog bit), as the paper observes; `0x0F` is Pedal Down, matching
    /// the 0x0F/0x1F trigger values of §III.B.2.
    pub const fn nibble(self) -> u8 {
        match self {
            RobotState::EStop => 0x0,
            RobotState::Init => 0x3,
            RobotState::PedalUp => 0x7,
            RobotState::PedalDown => 0xF,
        }
    }

    /// Parses a state nibble.
    pub const fn from_nibble(nibble: u8) -> Option<RobotState> {
        match nibble {
            0x0 => Some(RobotState::EStop),
            0x3 => Some(RobotState::Init),
            0x7 => Some(RobotState::PedalUp),
            0xF => Some(RobotState::PedalDown),
            _ => None,
        }
    }

    /// All states in the order the state machine visits them.
    pub const fn all() -> [RobotState; 4] {
        [RobotState::EStop, RobotState::Init, RobotState::PedalUp, RobotState::PedalDown]
    }
}

impl std::fmt::Display for RobotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RobotState::EStop => "E-STOP",
            RobotState::Init => "Init",
            RobotState::PedalUp => "Pedal Up",
            RobotState::PedalDown => "Pedal Down",
        };
        f.write_str(s)
    }
}

/// Length of a command packet on the wire.
pub const COMMAND_PACKET_LEN: usize = 18;

/// Number of DAC channels per board.
pub const DAC_CHANNELS: usize = 8;

/// Bit 4 of Byte 0: the software watchdog ("I'm alive") square wave.
pub const WATCHDOG_BIT: u8 = 0x10;

/// A decoded command packet (control software → USB board).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UsbCommandPacket {
    /// Operational state advertised to the PLC.
    pub state: RobotState,
    /// Watchdog square-wave phase.
    pub watchdog: bool,
    /// DAC words for motor channels 0–7 (0–2 positioning, 3–6 wrist,
    /// 7 unused).
    pub dac: [i16; DAC_CHANNELS],
}

/// Why a packet failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketError {
    /// Wrong wire length.
    WrongLength {
        /// Observed length.
        got: usize,
        /// Required length.
        want: usize,
    },
    /// Byte 0 carries an unknown state nibble.
    UnknownState {
        /// The offending nibble.
        nibble: u8,
    },
    /// Checksum mismatch (only reported by the *verifying* decoder).
    BadChecksum {
        /// Checksum computed over the payload.
        computed: u8,
        /// Checksum found on the wire.
        found: u8,
    },
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::WrongLength { got, want } => {
                write!(f, "wrong packet length: got {got}, want {want}")
            }
            PacketError::UnknownState { nibble } => {
                write!(f, "unknown state nibble {nibble:#x}")
            }
            PacketError::BadChecksum { computed, found } => {
                write!(f, "checksum mismatch: computed {computed:#04x}, found {found:#04x}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

impl UsbCommandPacket {
    /// Encodes to the 18-byte wire format (with a valid checksum).
    pub fn encode(&self) -> [u8; COMMAND_PACKET_LEN] {
        let mut buf = [0u8; COMMAND_PACKET_LEN];
        buf[0] = self.state.nibble() | if self.watchdog { WATCHDOG_BIT } else { 0 };
        for (i, word) in self.dac.iter().enumerate() {
            let le = word.to_le_bytes();
            buf[1 + 2 * i] = le[0];
            buf[2 + 2 * i] = le[1];
        }
        buf[COMMAND_PACKET_LEN - 1] = checksum(&buf[..COMMAND_PACKET_LEN - 1]);
        buf
    }

    /// Decodes the wire format *without verifying the checksum* — the stock
    /// USB board behavior the attack exploits. Unknown state nibbles are
    /// still rejected (the board cannot act on them).
    ///
    /// # Errors
    ///
    /// [`PacketError::WrongLength`] or [`PacketError::UnknownState`].
    pub fn decode_unchecked(buf: &[u8]) -> Result<UsbCommandPacket, PacketError> {
        if buf.len() != COMMAND_PACKET_LEN {
            return Err(PacketError::WrongLength { got: buf.len(), want: COMMAND_PACKET_LEN });
        }
        let state = RobotState::from_nibble(buf[0] & 0x0F)
            .ok_or(PacketError::UnknownState { nibble: buf[0] & 0x0F })?;
        let watchdog = buf[0] & WATCHDOG_BIT != 0;
        let mut dac = [0i16; DAC_CHANNELS];
        for (i, word) in dac.iter_mut().enumerate() {
            *word = i16::from_le_bytes([buf[1 + 2 * i], buf[2 + 2 * i]]);
        }
        Ok(UsbCommandPacket { state, watchdog, dac })
    }

    /// Decodes *and* verifies the checksum — the integrity check the boards
    /// should have had. Provided for the hardening experiments.
    ///
    /// # Errors
    ///
    /// Everything [`UsbCommandPacket::decode_unchecked`] returns, plus
    /// [`PacketError::BadChecksum`].
    pub fn decode_verified(buf: &[u8]) -> Result<UsbCommandPacket, PacketError> {
        if buf.len() != COMMAND_PACKET_LEN {
            return Err(PacketError::WrongLength { got: buf.len(), want: COMMAND_PACKET_LEN });
        }
        let computed = checksum(&buf[..COMMAND_PACKET_LEN - 1]);
        let found = buf[COMMAND_PACKET_LEN - 1];
        if computed != found {
            return Err(PacketError::BadChecksum { computed, found });
        }
        Self::decode_unchecked(buf)
    }
}

/// Length of a feedback packet on the wire: Byte 0 echoes the state byte,
/// then 8 × i24 little-endian encoder counts, then a checksum.
pub const FEEDBACK_PACKET_LEN: usize = 26;

/// Bit 5 of feedback Byte 0: the PLC's E-STOP latch, reported back to the
/// control software ("the PLC … monitors the system state by communicating
/// with the robotic software", paper §II.B).
pub const PLC_FAULT_BIT: u8 = 0x20;

/// A decoded feedback packet (USB board → control software).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UsbFeedbackPacket {
    /// Echo of the last accepted state.
    pub state: RobotState,
    /// Echo of the watchdog phase.
    pub watchdog: bool,
    /// The PLC's E-STOP latch (set on watchdog timeout, hardware trips, or
    /// the physical button).
    pub plc_fault: bool,
    /// Encoder counts for channels 0–7 (24-bit signed on the wire).
    pub encoders: [i32; DAC_CHANNELS],
}

impl UsbFeedbackPacket {
    /// Encodes to the 26-byte wire format.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an encoder count exceeds the signed 24-bit
    /// range (the hardware register would have wrapped long before).
    pub fn encode(&self) -> [u8; FEEDBACK_PACKET_LEN] {
        let mut buf = [0u8; FEEDBACK_PACKET_LEN];
        buf[0] = self.state.nibble()
            | if self.watchdog { WATCHDOG_BIT } else { 0 }
            | if self.plc_fault { PLC_FAULT_BIT } else { 0 };
        for (i, count) in self.encoders.iter().enumerate() {
            debug_assert!(
                (-(1 << 23)..(1 << 23)).contains(count),
                "encoder count {count} exceeds i24"
            );
            let le = count.to_le_bytes();
            buf[1 + 3 * i] = le[0];
            buf[2 + 3 * i] = le[1];
            buf[3 + 3 * i] = le[2];
        }
        buf[FEEDBACK_PACKET_LEN - 1] = checksum(&buf[..FEEDBACK_PACKET_LEN - 1]);
        buf
    }

    /// Decodes the wire format without checksum verification (the control
    /// software trusts the boards just as the boards trust the software).
    ///
    /// # Errors
    ///
    /// [`PacketError::WrongLength`] or [`PacketError::UnknownState`].
    pub fn decode_unchecked(buf: &[u8]) -> Result<UsbFeedbackPacket, PacketError> {
        if buf.len() != FEEDBACK_PACKET_LEN {
            return Err(PacketError::WrongLength { got: buf.len(), want: FEEDBACK_PACKET_LEN });
        }
        let state = RobotState::from_nibble(buf[0] & 0x0F)
            .ok_or(PacketError::UnknownState { nibble: buf[0] & 0x0F })?;
        let watchdog = buf[0] & WATCHDOG_BIT != 0;
        let plc_fault = buf[0] & PLC_FAULT_BIT != 0;
        let mut encoders = [0i32; DAC_CHANNELS];
        for (i, out) in encoders.iter_mut().enumerate() {
            let raw = u32::from(buf[1 + 3 * i])
                | u32::from(buf[2 + 3 * i]) << 8
                | u32::from(buf[3 + 3 * i]) << 16;
            // Sign-extend from 24 bits.
            *out = ((raw << 8) as i32) >> 8;
        }
        Ok(UsbFeedbackPacket { state, watchdog, plc_fault, encoders })
    }
}

/// The additive checksum used on both packet types.
pub fn checksum(payload: &[u8]) -> u8 {
    payload.iter().fold(0u8, |acc, b| acc.wrapping_add(*b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_nibbles_are_distinct_and_roundtrip() {
        for s in RobotState::all() {
            assert_eq!(RobotState::from_nibble(s.nibble()), Some(s));
        }
        assert_eq!(RobotState::from_nibble(0x5), None);
        // Pedal Down must be 0x0F: the paper's malware triggers on 0x0F/0x1F.
        assert_eq!(RobotState::PedalDown.nibble(), 0x0F);
    }

    #[test]
    fn byte0_has_eight_values_four_without_watchdog() {
        let mut values = std::collections::HashSet::new();
        for s in RobotState::all() {
            for wd in [false, true] {
                let pkt = UsbCommandPacket { state: s, watchdog: wd, dac: [0; 8] };
                values.insert(pkt.encode()[0]);
            }
        }
        assert_eq!(values.len(), 8);
        let without_wd: std::collections::HashSet<u8> =
            values.iter().map(|b| b & !WATCHDOG_BIT).collect();
        assert_eq!(without_wd.len(), 4);
    }

    #[test]
    fn command_roundtrip() {
        let pkt = UsbCommandPacket {
            state: RobotState::PedalDown,
            watchdog: true,
            dac: [100, -200, 3000, -4000, 0, 1, -1, i16::MAX],
        };
        let buf = pkt.encode();
        assert_eq!(buf.len(), COMMAND_PACKET_LEN);
        assert_eq!(buf[0], 0x1F);
        assert_eq!(UsbCommandPacket::decode_unchecked(&buf).unwrap(), pkt);
        assert_eq!(UsbCommandPacket::decode_verified(&buf).unwrap(), pkt);
    }

    #[test]
    fn board_accepts_corrupted_payload_without_checksum_check() {
        // The TOCTOU attack: mutate a DAC byte after encoding; the stock
        // decoder accepts it, the verifying decoder rejects it.
        let pkt = UsbCommandPacket { state: RobotState::PedalDown, watchdog: false, dac: [0; 8] };
        let mut buf = pkt.encode();
        buf[2] = buf[2].wrapping_add(77); // high byte of channel 0
        let decoded = UsbCommandPacket::decode_unchecked(&buf).unwrap();
        assert_ne!(decoded.dac[0], 0, "corruption must reach the DAC");
        assert!(matches!(
            UsbCommandPacket::decode_verified(&buf),
            Err(PacketError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(matches!(
            UsbCommandPacket::decode_unchecked(&[0u8; 5]),
            Err(PacketError::WrongLength { got: 5, want: COMMAND_PACKET_LEN })
        ));
        assert!(matches!(
            UsbFeedbackPacket::decode_unchecked(&[0u8; 5]),
            Err(PacketError::WrongLength { .. })
        ));
    }

    #[test]
    fn unknown_state_rejected() {
        let mut buf = UsbCommandPacket::default().encode();
        buf[0] = 0x05;
        assert!(matches!(
            UsbCommandPacket::decode_unchecked(&buf),
            Err(PacketError::UnknownState { nibble: 0x5 })
        ));
    }

    #[test]
    fn feedback_roundtrip_with_negative_counts() {
        let pkt = UsbFeedbackPacket {
            state: RobotState::PedalUp,
            watchdog: true,
            plc_fault: true,
            encoders: [0, 1, -1, 123_456, -123_456, 8_388_607, -8_388_608, 42],
        };
        let buf = pkt.encode();
        assert_eq!(UsbFeedbackPacket::decode_unchecked(&buf).unwrap(), pkt);
    }

    #[test]
    fn checksum_is_additive() {
        assert_eq!(checksum(&[1, 2, 3]), 6);
        assert_eq!(checksum(&[255, 1]), 0); // wraps
        assert_eq!(checksum(&[]), 0);
    }

    #[test]
    fn packet_error_display() {
        let e = PacketError::WrongLength { got: 3, want: 18 };
        assert!(format!("{e}").contains("length"));
        let e = PacketError::BadChecksum { computed: 1, found: 2 };
        assert!(format!("{e}").contains("checksum"));
        let e = PacketError::UnknownState { nibble: 9 };
        assert!(format!("{e}").contains("state"));
    }
}
