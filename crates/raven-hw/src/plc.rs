//! The PLC safety processor.
//!
//! "The PLC controls the fail-safe brakes on the robotic joints and monitors
//! the system state by communicating with the robotic software … The PLC
//! safety processor monitors the watchdog signal and in absence of the
//! watchdog signal puts the system in the Emergency-Stop ('E-STOP') state"
//! (paper §II.B). The PLC sees only Byte 0 of the USB traffic: the state
//! nibble and the watchdog bit.

use serde::{Deserialize, Serialize};
use simbus::{SimDuration, SimTime};

use crate::packet::RobotState;

/// Why the PLC latched E-STOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EStopCause {
    /// The watchdog square wave stopped toggling (software detected an
    /// unsafe command, hung, or was killed).
    WatchdogTimeout,
    /// The software commanded E-STOP explicitly.
    SoftwareCommand,
    /// The physical emergency-stop button was pressed.
    PhysicalButton,
    /// The motor controllers tripped on over-speed — the hardware-side
    /// reaction to an abrupt jump ("leading both the RAVEN II software and
    /// hardware to go into the E-STOP state", paper §III.C.1).
    HardwareFault,
}

impl EStopCause {
    /// Stable snake_case token for metric names and event fields
    /// (e.g. `estop.count.watchdog_timeout`).
    pub fn slug(self) -> &'static str {
        match self {
            EStopCause::WatchdogTimeout => "watchdog_timeout",
            EStopCause::SoftwareCommand => "software_command",
            EStopCause::PhysicalButton => "physical_button",
            EStopCause::HardwareFault => "hardware_fault",
        }
    }
}

impl std::fmt::Display for EStopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EStopCause::WatchdogTimeout => "watchdog timeout",
            EStopCause::SoftwareCommand => "software E-STOP command",
            EStopCause::PhysicalButton => "physical E-STOP button",
            EStopCause::HardwareFault => "hardware over-speed trip",
        };
        f.write_str(s)
    }
}

/// The PLC safety processor: watchdog monitor, brake control, E-STOP latch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Plc {
    watchdog_timeout: SimDuration,
    last_watchdog_phase: Option<bool>,
    last_toggle: SimTime,
    estop: Option<EStopCause>,
    observed_state: RobotState,
    packets_seen: u64,
}

impl Plc {
    /// Default watchdog timeout: 10 control periods.
    pub const DEFAULT_WATCHDOG_TIMEOUT: SimDuration = SimDuration::from_millis(10);

    /// Creates a PLC in the power-on E-STOP state.
    pub fn new() -> Self {
        Self::with_timeout(Self::DEFAULT_WATCHDOG_TIMEOUT)
    }

    /// Creates a PLC with a custom watchdog timeout.
    pub fn with_timeout(watchdog_timeout: SimDuration) -> Self {
        Plc {
            watchdog_timeout,
            last_watchdog_phase: None,
            last_toggle: SimTime::ZERO,
            estop: Some(EStopCause::PhysicalButton), // powered up stopped
            observed_state: RobotState::EStop,
            packets_seen: 0,
        }
    }

    /// Feeds the PLC one observed Byte 0 (state nibble + watchdog bit), as
    /// decoded by the USB board.
    pub fn observe(&mut self, state: RobotState, watchdog: bool, now: SimTime) {
        self.packets_seen += 1;
        self.observed_state = state;
        match self.last_watchdog_phase {
            None => {
                self.last_watchdog_phase = Some(watchdog);
                self.last_toggle = now;
            }
            Some(phase) if phase != watchdog => {
                self.last_watchdog_phase = Some(watchdog);
                self.last_toggle = now;
            }
            Some(_) => {}
        }
        if state == RobotState::EStop && self.estop.is_none() {
            self.estop = Some(EStopCause::SoftwareCommand);
        }
    }

    /// Advances the PLC's own clock: checks the watchdog deadline. Call once
    /// per control period even when no packet arrived (silence is itself a
    /// watchdog failure).
    pub fn tick(&mut self, now: SimTime) {
        if self.estop.is_none() && now.saturating_since(self.last_toggle) > self.watchdog_timeout {
            self.estop = Some(EStopCause::WatchdogTimeout);
        }
    }

    /// Presses the physical start button: clears the E-STOP latch so the
    /// software can begin initialization (paper: "A physical start button
    /// should be pressed to take the robot out of the emergency stop").
    pub fn press_start(&mut self, now: SimTime) {
        self.estop = None;
        self.last_watchdog_phase = None;
        self.last_toggle = now;
    }

    /// Presses the physical E-STOP button.
    pub fn press_estop(&mut self) {
        self.estop = Some(EStopCause::PhysicalButton);
    }

    /// Latches a hardware-side fault (motor-controller over-speed trip).
    pub fn latch_hardware_fault(&mut self) {
        if self.estop.is_none() {
            self.estop = Some(EStopCause::HardwareFault);
        }
    }

    /// Whether the E-STOP latch is set, and why.
    pub fn estop(&self) -> Option<EStopCause> {
        self.estop
    }

    /// Brake command: brakes are released in Pedal Down (teleoperation) and
    /// Init (the homing sequence physically moves the joints), never with an
    /// E-STOP latched, and never in Pedal Up ("Whenever the human operator
    /// lifts the foot from the pedal … engages the fail-safe power-off
    /// brakes", paper §II.B).
    pub fn brakes_released(&self) -> bool {
        self.estop.is_none()
            && matches!(self.observed_state, RobotState::PedalDown | RobotState::Init)
    }

    /// Last state nibble the PLC observed.
    pub fn observed_state(&self) -> RobotState {
        self.observed_state
    }

    /// Packets observed since power-up.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }
}

impl Default for Plc {
    fn default() -> Self {
        Plc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Drives a healthy watchdog (toggling every tick) through the PLC.
    fn drive_healthy(plc: &mut Plc, state: RobotState, from_ms: u64, to_ms: u64) {
        for ms in from_ms..to_ms {
            plc.observe(state, ms % 2 == 0, at(ms));
            plc.tick(at(ms));
        }
    }

    #[test]
    fn powers_up_in_estop() {
        let plc = Plc::new();
        assert_eq!(plc.estop(), Some(EStopCause::PhysicalButton));
        assert!(!plc.brakes_released());
    }

    #[test]
    fn start_button_clears_latch() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        assert_eq!(plc.estop(), None);
    }

    #[test]
    fn brakes_release_only_in_pedal_down_and_init() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::Init, 0, 5);
        assert!(plc.brakes_released(), "homing moves the joints");
        drive_healthy(&mut plc, RobotState::PedalUp, 5, 10);
        assert!(!plc.brakes_released());
        drive_healthy(&mut plc, RobotState::PedalDown, 10, 15);
        assert!(plc.brakes_released());
    }

    #[test]
    fn watchdog_silence_latches_estop() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::PedalDown, 0, 20);
        assert!(plc.brakes_released());
        // Watchdog freezes (software stopped toggling after detecting an
        // unsafe command) — but packets keep flowing.
        for ms in 20..40 {
            plc.observe(RobotState::PedalDown, true, at(ms));
            plc.tick(at(ms));
        }
        assert_eq!(plc.estop(), Some(EStopCause::WatchdogTimeout));
        assert!(!plc.brakes_released());
    }

    #[test]
    fn total_silence_also_latches_estop() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::PedalDown, 0, 5);
        for ms in 5..40 {
            plc.tick(at(ms)); // no packets at all
        }
        assert_eq!(plc.estop(), Some(EStopCause::WatchdogTimeout));
    }

    #[test]
    fn software_estop_command_latches() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::PedalDown, 0, 3);
        plc.observe(RobotState::EStop, true, at(3));
        assert_eq!(plc.estop(), Some(EStopCause::SoftwareCommand));
    }

    #[test]
    fn physical_estop_overrides_everything() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::PedalDown, 0, 5);
        plc.press_estop();
        assert_eq!(plc.estop(), Some(EStopCause::PhysicalButton));
        assert!(!plc.brakes_released());
    }

    #[test]
    fn healthy_watchdog_never_times_out() {
        let mut plc = Plc::new();
        plc.press_start(at(0));
        drive_healthy(&mut plc, RobotState::PedalDown, 0, 1000);
        assert_eq!(plc.estop(), None);
        assert_eq!(plc.packets_seen(), 1000);
    }

    #[test]
    fn estop_cause_display() {
        assert_eq!(format!("{}", EStopCause::WatchdogTimeout), "watchdog timeout");
    }
}
