//! Simulated RAVEN II hardware substrate.
//!
//! Everything below the control software in the paper's Fig. 1(b):
//!
//! * [`packet`] — byte-exact USB command/feedback packet formats, including
//!   the state/watchdog leak in Byte 0 (Figs. 5–6) and the *missing*
//!   integrity check the attack exploits (§III.B.3);
//! * [`channel`] — the USB write/read paths with an interceptor chain, the
//!   analog of the `LD_PRELOAD` system-call-wrapper hook (Fig. 4): attack
//!   wrappers from `raven-attack` and the dynamic-model guard from
//!   `raven-detect` both install here;
//! * [`board`] — the 8-channel interface board (stock: no integrity check;
//!   [`board::UsbBoard::hardened`] for the counterfactual);
//! * [`chaos`] — windowed accidental-fault interceptors (stuck/bit-flipped
//!   encoders, dropped USB frames, transient board silence) for the
//!   chaos-testing harness;
//! * [`plc`] — the PLC safety processor: watchdog monitor, fail-safe brakes,
//!   E-STOP latch;
//! * [`rig`] — the assembled hardware: channel → board → PLC/motor
//!   controllers → plant → encoders → read path.

#![forbid(unsafe_code)]

pub mod bitw;
pub mod board;
pub mod channel;
pub mod chaos;
pub mod packet;
pub mod plc;
pub mod rig;

pub use bitw::{BitwCodec, BitwPlacement, BITW_OVERHEAD};
pub use board::UsbBoard;
pub use channel::{ReadInterceptor, UsbChannel, WriteAction, WriteContext, WriteInterceptor};
pub use chaos::{
    ChaosEncoderBitFlip, ChaosFeedbackHold, ChaosFrameDrop, ChaosStuckEncoder, FaultWindow,
};
pub use packet::{
    PacketError, RobotState, UsbCommandPacket, UsbFeedbackPacket, COMMAND_PACKET_LEN, DAC_CHANNELS,
    FEEDBACK_PACKET_LEN, WATCHDOG_BIT,
};
pub use plc::{EStopCause, Plc};
pub use rig::{HardwareRig, OVERSPEED_LIMITS, WRIST_RAD_PER_COUNT};
