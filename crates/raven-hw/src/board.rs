//! The 8-channel USB interface board.
//!
//! "The interface boards include commodity programmable devices, digital to
//! analog converters, and encoder readers" (paper §II.B). The board decodes
//! command packets **without verifying their integrity** — the vulnerability
//! of §III.B.3 — latches the DAC words for the motor controllers, and
//! assembles encoder feedback packets for the read path.

use serde::{Deserialize, Serialize};

use crate::packet::{PacketError, RobotState, UsbCommandPacket, UsbFeedbackPacket, DAC_CHANNELS};

/// One USB interface board.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsbBoard {
    latched: UsbCommandPacket,
    received: u64,
    rejected: u64,
    verify_integrity: bool,
    integrity_rejects: u64,
}

impl UsbBoard {
    /// A stock board (no integrity verification — as shipped).
    pub fn new() -> Self {
        Self::default()
    }

    /// A hardened board that *does* verify packet checksums — the
    /// counterfactual defense for the ablation experiments.
    pub fn hardened() -> Self {
        UsbBoard { verify_integrity: true, ..Self::default() }
    }

    /// Processes one raw command buffer from the write path.
    ///
    /// On success the DAC words and state byte are latched and the decoded
    /// packet is returned (the PLC observes its Byte 0). Undecodable buffers
    /// are dropped and counted, leaving the previous latch in place — real
    /// DACs hold their last value between updates.
    ///
    /// # Errors
    ///
    /// Propagates [`PacketError`] for malformed buffers (and, on a hardened
    /// board, checksum mismatches).
    pub fn receive(&mut self, buf: &[u8]) -> Result<UsbCommandPacket, PacketError> {
        let decoded = if self.verify_integrity {
            match UsbCommandPacket::decode_verified(buf) {
                Err(e @ PacketError::BadChecksum { .. }) => {
                    self.integrity_rejects += 1;
                    self.rejected += 1;
                    return Err(e);
                }
                other => other,
            }
        } else {
            UsbCommandPacket::decode_unchecked(buf)
        };
        match decoded {
            Ok(pkt) => {
                self.latched = pkt;
                self.received += 1;
                Ok(pkt)
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    /// The DAC words currently latched on the outputs.
    pub fn latched_dac(&self) -> [i16; DAC_CHANNELS] {
        self.latched.dac
    }

    /// The positioning-axis DAC words (channels 0–2).
    pub fn positioning_dac(&self) -> [i16; 3] {
        [self.latched.dac[0], self.latched.dac[1], self.latched.dac[2]]
    }

    /// The last accepted state byte content.
    pub fn latched_state(&self) -> (RobotState, bool) {
        (self.latched.state, self.latched.watchdog)
    }

    /// Builds a feedback packet echoing the latched state byte.
    pub fn make_feedback(&self, encoders: [i32; DAC_CHANNELS]) -> UsbFeedbackPacket {
        UsbFeedbackPacket {
            state: self.latched.state,
            watchdog: self.latched.watchdog,
            plc_fault: false, // the rig fills this in from the PLC latch
            encoders,
        }
    }

    /// Packets accepted since power-up.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets rejected as undecodable.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Packets rejected by the (optional) integrity check.
    pub fn integrity_rejects(&self) -> u64 {
        self.integrity_rejects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pedal_down_pkt(dac0: i16) -> UsbCommandPacket {
        let mut dac = [0i16; DAC_CHANNELS];
        dac[0] = dac0;
        UsbCommandPacket { state: RobotState::PedalDown, watchdog: true, dac }
    }

    #[test]
    fn receive_latches_dac() {
        let mut board = UsbBoard::new();
        board.receive(&pedal_down_pkt(123).encode()).unwrap();
        assert_eq!(board.latched_dac()[0], 123);
        assert_eq!(board.positioning_dac(), [123, 0, 0]);
        assert_eq!(board.latched_state(), (RobotState::PedalDown, true));
        assert_eq!(board.received(), 1);
    }

    #[test]
    fn stock_board_accepts_corrupted_packets() {
        // The core vulnerability: flipping payload bytes post-checksum is
        // accepted by the stock board.
        let mut board = UsbBoard::new();
        let mut buf = pedal_down_pkt(0).encode();
        buf[2] = 0x40; // high byte of DAC channel 0 -> 0x4000 counts
        board.receive(&buf).unwrap();
        assert_eq!(board.latched_dac()[0], 0x4000);
        assert_eq!(board.rejected(), 0);
    }

    #[test]
    fn hardened_board_rejects_corruption_and_keeps_latch() {
        let mut board = UsbBoard::hardened();
        board.receive(&pedal_down_pkt(55).encode()).unwrap();
        let mut buf = pedal_down_pkt(0).encode();
        buf[2] = 0x40;
        let err = board.receive(&buf).unwrap_err();
        assert!(matches!(err, PacketError::BadChecksum { .. }));
        assert_eq!(board.latched_dac()[0], 55, "latch must hold the last good value");
        assert_eq!(board.integrity_rejects(), 1);
    }

    #[test]
    fn malformed_length_rejected_latch_held() {
        let mut board = UsbBoard::new();
        board.receive(&pedal_down_pkt(9).encode()).unwrap();
        assert!(board.receive(&[0u8; 4]).is_err());
        assert_eq!(board.latched_dac()[0], 9);
        assert_eq!(board.rejected(), 1);
    }

    #[test]
    fn feedback_echoes_state() {
        let mut board = UsbBoard::new();
        board.receive(&pedal_down_pkt(0).encode()).unwrap();
        let fb = board.make_feedback([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(fb.state, RobotState::PedalDown);
        assert!(fb.watchdog);
        assert_eq!(fb.encoders[2], 3);
    }
}
