//! Hardware-level chaos faults: windowed interceptors on the USB paths.
//!
//! `simbus::chaos` schedules *what* goes wrong and *when*; this module is
//! the *how* for the hardware-level fault classes — each scheduled fault
//! becomes one windowed interceptor installed on the rig's
//! [`UsbChannel`](crate::channel::UsbChannel):
//!
//! * [`ChaosFrameDrop`] — the board misses command frames (write path);
//! * [`ChaosStuckEncoder`] — one encoder freezes at its current count
//!   (read path);
//! * [`ChaosEncoderBitFlip`] — one bit of an encoder count flips (read
//!   path);
//! * [`ChaosFeedbackHold`] — the read half of transient board silence:
//!   feedback frozen at the last frame (pair it with a [`ChaosFrameDrop`]
//!   for the write half).
//!
//! Faults announce themselves **once per window** as a `chaos.injected`
//! event (+ the `chaos.injections` counter), so every incident a chaos run
//! produces is attributable to its cause in the event log. The write-path
//! faults drop frames *without touching bytes*, so they count as channel
//! `drops`, never as `mutations` — chaos is not mistaken for the paper's
//! injection malware in `attack.injections`.
//!
//! Everything here is panic-free (lint rule R3): malformed buffers are
//! forwarded unchanged rather than unwrapped.

use simbus::obs::{names, Event, EventKind, Severity, SharedObserver};
use simbus::{SimDuration, SimTime};

use crate::channel::{ReadInterceptor, WriteAction, WriteContext, WriteInterceptor};
use crate::packet::{checksum, FEEDBACK_PACKET_LEN};

/// A half-open virtual-time window `[from, until)` during which a fault is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant after the fault (exclusive).
    pub until: SimTime,
}

impl FaultWindow {
    /// A window starting at `from` and lasting `ms` milliseconds.
    pub fn starting_at(from: SimTime, ms: u64) -> Self {
        FaultWindow { from, until: from + SimDuration::from_millis(ms) }
    }

    /// `true` while the fault is active.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// Emits the one-per-window `chaos.injected` announcement.
fn announce(
    observer: &Option<SharedObserver>,
    now: SimTime,
    slug: &'static str,
    window: &FaultWindow,
    details: &[(&'static str, i64)],
) {
    let Some(observer) = observer else { return };
    let mut obs = observer.lock();
    obs.metrics.inc(names::CHAOS_INJECTIONS);
    let span_ms = window.until.saturating_since(window.from).as_nanos() / 1_000_000;
    let mut event = Event::new(now, "chaos", Severity::Warn, EventKind::ChaosInjected)
        .with("fault", slug)
        .with("window_ms", span_ms);
    for (key, value) in details {
        event = event.with(*key, *value);
    }
    obs.event(event);
}

/// Write-path fault: the board misses every command frame inside the
/// window (models dropped USB frames; also the write half of transient
/// board silence).
///
/// Frames are dropped with their bytes untouched, so the channel counts
/// them under `drops`, not `mutations`.
#[derive(Debug)]
pub struct ChaosFrameDrop {
    name: &'static str,
    slug: &'static str,
    window: FaultWindow,
    announced: bool,
    observer: Option<SharedObserver>,
}

impl ChaosFrameDrop {
    /// A dropped-USB-frames fault over `window`.
    pub fn usb_frames(window: FaultWindow, observer: Option<SharedObserver>) -> Self {
        ChaosFrameDrop {
            name: "chaos.usb_frame_drop",
            slug: "hw.usb_frame_drop",
            window,
            announced: false,
            observer,
        }
    }

    /// The write half of a board-silence fault over `window`. Announces as
    /// `hw.board_silence`; install a silent [`ChaosFeedbackHold`] for the
    /// read half so the pair emits one announcement.
    pub fn board_silence(window: FaultWindow, observer: Option<SharedObserver>) -> Self {
        ChaosFrameDrop {
            name: "chaos.board_silence.write",
            slug: "hw.board_silence",
            window,
            announced: false,
            observer,
        }
    }
}

impl WriteInterceptor for ChaosFrameDrop {
    fn on_write(&mut self, _buf: &mut Vec<u8>, ctx: &WriteContext) -> WriteAction {
        if !self.window.contains(ctx.time) {
            return WriteAction::Forward;
        }
        if !self.announced {
            self.announced = true;
            announce(&self.observer, ctx.time, self.slug, &self.window, &[]);
        }
        WriteAction::Drop
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Byte offset of encoder `channel` in a feedback frame.
fn encoder_offset(channel: usize) -> usize {
    1 + 3 * channel
}

/// Rewrites the additive checksum after a feedback mutation, keeping the
/// frame well-formed on the wire.
fn fix_feedback_checksum(buf: &mut [u8]) {
    if buf.len() == FEEDBACK_PACKET_LEN {
        buf[FEEDBACK_PACKET_LEN - 1] = checksum(&buf[..FEEDBACK_PACKET_LEN - 1]);
    }
}

/// Read-path fault: one encoder channel freezes at the count it had when
/// the window opened (a stuck sensor, §V's accidental-fault class).
#[derive(Debug)]
pub struct ChaosStuckEncoder {
    channel: usize,
    window: FaultWindow,
    held: Option<[u8; 3]>,
    announced: bool,
    observer: Option<SharedObserver>,
}

impl ChaosStuckEncoder {
    /// Freezes positioning channel `channel` (0–2) over `window`.
    pub fn new(channel: usize, window: FaultWindow, observer: Option<SharedObserver>) -> Self {
        ChaosStuckEncoder { channel, window, held: None, announced: false, observer }
    }
}

impl ReadInterceptor for ChaosStuckEncoder {
    fn on_read(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) {
        let off = encoder_offset(self.channel);
        if buf.len() != FEEDBACK_PACKET_LEN || off + 3 > buf.len() {
            return;
        }
        if !self.window.contains(ctx.time) {
            return;
        }
        if !self.announced {
            self.announced = true;
            announce(
                &self.observer,
                ctx.time,
                "hw.stuck_encoder",
                &self.window,
                &[("channel", self.channel as i64)],
            );
        }
        let held = *self.held.get_or_insert([buf[off], buf[off + 1], buf[off + 2]]);
        buf[off..off + 3].copy_from_slice(&held);
        fix_feedback_checksum(buf);
    }

    fn name(&self) -> &str {
        "chaos.stuck_encoder"
    }
}

/// Read-path fault: one bit of an encoder count is flipped for the whole
/// window (a flaky sensor line / register bit).
#[derive(Debug)]
pub struct ChaosEncoderBitFlip {
    channel: usize,
    bit: u8,
    window: FaultWindow,
    announced: bool,
    observer: Option<SharedObserver>,
}

impl ChaosEncoderBitFlip {
    /// Flips bit `bit` (0–23) of positioning channel `channel` over
    /// `window`.
    pub fn new(
        channel: usize,
        bit: u8,
        window: FaultWindow,
        observer: Option<SharedObserver>,
    ) -> Self {
        ChaosEncoderBitFlip { channel, bit, window, announced: false, observer }
    }
}

impl ReadInterceptor for ChaosEncoderBitFlip {
    fn on_read(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) {
        let off = encoder_offset(self.channel) + usize::from(self.bit / 8);
        if buf.len() != FEEDBACK_PACKET_LEN || off >= buf.len() - 1 || self.bit >= 24 {
            return;
        }
        if !self.window.contains(ctx.time) {
            return;
        }
        if !self.announced {
            self.announced = true;
            announce(
                &self.observer,
                ctx.time,
                "hw.encoder_bitflip",
                &self.window,
                &[("channel", self.channel as i64), ("bit", i64::from(self.bit))],
            );
        }
        buf[off] ^= 1 << (self.bit % 8);
        fix_feedback_checksum(buf);
    }

    fn name(&self) -> &str {
        "chaos.encoder_bitflip"
    }
}

/// Read-path half of transient board silence: while the window is open the
/// control software keeps reading the last frame the board produced before
/// going silent.
///
/// Construct with `observer = None` when paired with
/// [`ChaosFrameDrop::board_silence`], which owns the announcement.
#[derive(Debug)]
pub struct ChaosFeedbackHold {
    window: FaultWindow,
    last: Option<Vec<u8>>,
    announced: bool,
    observer: Option<SharedObserver>,
}

impl ChaosFeedbackHold {
    /// Holds feedback at its pre-window value over `window`.
    pub fn new(window: FaultWindow, observer: Option<SharedObserver>) -> Self {
        ChaosFeedbackHold { window, last: None, announced: false, observer }
    }
}

impl ReadInterceptor for ChaosFeedbackHold {
    fn on_read(&mut self, buf: &mut Vec<u8>, ctx: &WriteContext) {
        if buf.len() != FEEDBACK_PACKET_LEN {
            return;
        }
        if self.window.contains(ctx.time) {
            if !self.announced {
                self.announced = true;
                announce(&self.observer, ctx.time, "hw.board_silence", &self.window, &[]);
            }
            if let Some(last) = &self.last {
                buf.clone_from(last);
            }
        } else {
            self.last = Some(buf.clone());
        }
    }

    fn name(&self) -> &str {
        "chaos.feedback_hold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::UsbChannel;
    use crate::packet::{RobotState, UsbCommandPacket, UsbFeedbackPacket};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn feedback(encoders: [i32; 8]) -> Vec<u8> {
        UsbFeedbackPacket {
            state: RobotState::PedalDown,
            watchdog: true,
            plc_fault: false,
            encoders,
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn frame_drop_only_inside_window_and_never_mutates() {
        let obs = simbus::obs::shared_observer(16);
        let mut ch = UsbChannel::new();
        ch.install(Box::new(ChaosFrameDrop::usb_frames(
            FaultWindow::starting_at(at(10), 5),
            Some(std::sync::Arc::clone(&obs)),
        )));
        let pkt = UsbCommandPacket::default().encode().to_vec();
        assert!(ch.write(pkt.clone(), at(9)).delivered.is_some());
        for ms in 10..15 {
            let out = ch.write(pkt.clone(), at(ms));
            assert!(out.delivered.is_none());
            assert!(!out.mutated, "chaos drops must not count as mutations");
        }
        assert!(ch.write(pkt, at(15)).delivered.is_some());
        assert_eq!(ch.drops(), 5);
        assert_eq!(ch.mutations(), 0);
        let o = obs.lock();
        assert_eq!(o.metrics.counter(names::CHAOS_INJECTIONS), 1, "one announcement per window");
        assert_eq!(o.events.count_kind(EventKind::ChaosInjected.as_str()), 1);
    }

    #[test]
    fn stuck_encoder_holds_window_entry_value() {
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(ChaosStuckEncoder::new(
            1,
            FaultWindow::starting_at(at(5), 3),
            None,
        )));
        let decode = |b: &[u8]| UsbFeedbackPacket::decode_unchecked(b).map(|f| f.encoders);
        let before = ch.read(feedback([0, 100, 0, 0, 0, 0, 0, 0]), at(4));
        assert_eq!(decode(&before).map(|e| e[1]), Ok(100));
        // Window opens at count 200; later reads keep reporting 200.
        let first = ch.read(feedback([0, 200, 0, 0, 0, 0, 0, 0]), at(5));
        assert_eq!(decode(&first).map(|e| e[1]), Ok(200));
        let held = ch.read(feedback([7, 300, 9, 0, 0, 0, 0, 0]), at(6));
        let held = decode(&held).unwrap();
        assert_eq!(held[1], 200, "stuck channel holds its window-entry count");
        assert_eq!((held[0], held[2]), (7, 9), "other channels flow through");
        // After the window the live value is visible again.
        let after = ch.read(feedback([0, 400, 0, 0, 0, 0, 0, 0]), at(8));
        assert_eq!(decode(&after).map(|e| e[1]), Ok(400));
    }

    #[test]
    fn bitflip_xors_exactly_one_bit() {
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(ChaosEncoderBitFlip::new(
            0,
            12,
            FaultWindow::starting_at(at(1), 2),
            None,
        )));
        let clean = ch.read(feedback([1000, 0, 0, 0, 0, 0, 0, 0]), at(0));
        assert_eq!(UsbFeedbackPacket::decode_unchecked(&clean).unwrap().encoders[0], 1000);
        let flipped = ch.read(feedback([1000, 0, 0, 0, 0, 0, 0, 0]), at(1));
        let got = UsbFeedbackPacket::decode_unchecked(&flipped).unwrap().encoders[0];
        assert_eq!(got, 1000 ^ (1 << 12));
    }

    #[test]
    fn feedback_hold_replays_last_pre_window_frame() {
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(ChaosFeedbackHold::new(FaultWindow::starting_at(at(3), 2), None)));
        let _ = ch.read(feedback([10, 0, 0, 0, 0, 0, 0, 0]), at(1));
        let last = ch.read(feedback([20, 0, 0, 0, 0, 0, 0, 0]), at(2));
        let silent = ch.read(feedback([999, 999, 0, 0, 0, 0, 0, 0]), at(3));
        assert_eq!(silent, last, "silence replays the last live frame");
        let live = ch.read(feedback([30, 0, 0, 0, 0, 0, 0, 0]), at(5));
        assert_eq!(UsbFeedbackPacket::decode_unchecked(&live).unwrap().encoders[0], 30);
    }

    #[test]
    fn malformed_buffers_pass_through_unchanged() {
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(ChaosStuckEncoder::new(
            0,
            FaultWindow::starting_at(at(0), 10),
            None,
        )));
        ch.install_read(Box::new(ChaosEncoderBitFlip::new(
            0,
            5,
            FaultWindow::starting_at(at(0), 10),
            None,
        )));
        ch.install_read(Box::new(ChaosFeedbackHold::new(
            FaultWindow::starting_at(at(0), 10),
            None,
        )));
        let short = vec![1, 2, 3];
        assert_eq!(ch.read(short.clone(), at(1)), short);
    }

    #[test]
    fn mutated_feedback_keeps_a_valid_checksum() {
        let mut ch = UsbChannel::new();
        ch.install_read(Box::new(ChaosEncoderBitFlip::new(
            2,
            15,
            FaultWindow::starting_at(at(0), 10),
            None,
        )));
        let out = ch.read(feedback([0, 0, 5000, 0, 0, 0, 0, 0]), at(1));
        assert_eq!(out[FEEDBACK_PACKET_LEN - 1], checksum(&out[..FEEDBACK_PACKET_LEN - 1]));
    }
}
