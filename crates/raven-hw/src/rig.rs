//! The assembled hardware rig: write path → board → PLC/motors → plant →
//! encoders → read path.
//!
//! [`HardwareRig`] is everything below the control software in Fig. 1(b) of
//! the paper: the USB channel (with its interceptor chain), the interface
//! board, the PLC safety processor, the motor controllers, and the physical
//! plant. The control software interacts with it exactly twice per 1 ms
//! cycle: one command write and one feedback read.

use raven_dynamics::plant::EncoderReading;
use raven_dynamics::{PlantParams, RavenPlant};
use raven_kinematics::{MotorState, WRIST_AXES};
use simbus::obs::{names, spans, Event, EventKind, Severity, SharedObserver};
use simbus::{SimTime, SpanHandle};

use crate::bitw::{BitwCodec, BitwPlacement};
use crate::board::UsbBoard;
use crate::channel::{UsbChannel, WriteOutcome};
use crate::packet::{UsbCommandPacket, UsbFeedbackPacket, DAC_CHANNELS};
use crate::plc::{EStopCause, Plc};

/// Radians of wrist-servo target per DAC count on channels 3–6 (board spec).
pub const WRIST_RAD_PER_COUNT: f64 = 5.0e-5;

/// Motor-controller over-speed trip points per positioning axis (rad/s).
/// Normal teleoperation peaks below ~30 rad/s at the shafts; sustained
/// motion at the abrupt-jump scale (>1 mm per 2 ms at the end-effector)
/// corresponds to ~150+ rad/s. The trip fires as the jump develops — the
/// hardware-side detection the paper observes (§III.C.1), which reacts
/// *after* the physical impact rather than before it.
pub const OVERSPEED_LIMITS: [f64; 3] = [160.0, 160.0, 100.0];

/// The hardware side of the robot, assembled.
///
/// # Example
///
/// ```
/// use raven_hw::{HardwareRig, UsbCommandPacket, RobotState};
/// use raven_dynamics::PlantParams;
/// use simbus::SimTime;
///
/// let mut rig = HardwareRig::new(PlantParams::raven_ii());
/// rig.press_start(SimTime::ZERO);
/// let pkt = UsbCommandPacket { state: RobotState::Init, watchdog: true, dac: [0; 8] };
/// rig.deliver_command(&pkt, SimTime::ZERO);
/// rig.step(SimTime::ZERO);
/// let fb = rig.read_feedback(SimTime::ZERO);
/// assert_eq!(fb.state, RobotState::Init);
/// ```
#[derive(Debug)]
pub struct HardwareRig {
    /// The USB write/read paths with their interceptor chains.
    pub channel: UsbChannel,
    /// The 8-channel interface board.
    pub board: UsbBoard,
    /// The PLC safety processor.
    pub plc: Plc,
    /// The physical plant.
    pub plant: RavenPlant,
    last_encoder: Option<[i32; 3]>,
    bitw: Option<Bitw>,
    observer: Option<SharedObserver>,
    spans: SpanHandle,
    reported_estop: Option<EStopCause>,
    /// Reusable frame for the read path: carries the encoded (or sealed)
    /// feedback packet through the read interceptors, and reclaims the
    /// channel's returned storage afterwards.
    rx_frame: Vec<u8>,
    /// Reusable plaintext buffer for BITW `open_into` on both paths.
    open_scratch: Vec<u8>,
    /// Reusable ciphertext buffer for the `Wire`-placement round trip on
    /// the command path.
    wire_scratch: Vec<u8>,
}

#[derive(Debug)]
struct Bitw {
    placement: BitwPlacement,
    host_tx: BitwCodec,
    board_rx: BitwCodec,
    board_tx: BitwCodec,
    host_rx: BitwCodec,
}

impl HardwareRig {
    /// Builds a rig with a stock board around a fresh plant.
    pub fn new(params: PlantParams) -> Self {
        let plc = Plc::new();
        // The PLC powers up latched; that is the rig's normal initial
        // state, not an E-STOP edge worth reporting.
        let reported_estop = plc.estop();
        HardwareRig {
            channel: UsbChannel::new(),
            board: UsbBoard::new(),
            plc,
            plant: RavenPlant::new(params),
            last_encoder: None,
            bitw: None,
            observer: None,
            spans: SpanHandle::default(),
            reported_estop,
            rx_frame: Vec::default(),
            open_scratch: Vec::default(),
            wire_scratch: Vec::default(),
        }
    }

    /// Attaches an observer: the rig reports PLC E-STOP latch transitions
    /// as `estop.latched` / `estop.cleared` events and per-cause counters.
    pub fn set_observer(&mut self, observer: SharedObserver) {
        self.observer = Some(observer);
    }

    /// Attaches a span handle: [`HardwareRig::step`] runs under a
    /// `span.hw.board_cycle` span (no-op when the handle is disabled).
    pub fn set_span_handle(&mut self, handle: SpanHandle) {
        self.spans = handle;
    }

    /// Reports E-STOP latch edges since the last check. The PLC itself has
    /// several latch sites (watchdog deadline, state byte, button, over-
    /// speed trip), so the rig samples the latch at its two entry points
    /// (`deliver_command`, `step`) rather than instrumenting each site —
    /// the event time is the virtual time of the cycle that latched.
    fn note_estop_edges(&mut self, now: SimTime) {
        let Some(observer) = &self.observer else { return };
        let current = self.plc.estop();
        if current == self.reported_estop {
            return;
        }
        let mut obs = observer.lock();
        match current {
            Some(cause) => {
                obs.metrics.inc(&names::estop_count(cause.slug()));
                obs.event(
                    Event::new(now, "hw", Severity::Error, EventKind::EstopLatched)
                        .with("cause", cause.slug()),
                );
            }
            None => {
                obs.event(Event::new(now, "hw", Severity::Info, EventKind::EstopCleared));
            }
        }
        self.reported_estop = current;
    }

    /// Retrofits link encryption with the given placement and session key
    /// (paper §III.D's "bump-in-the-wire" discussion; see `bitw`).
    pub fn enable_bitw(&mut self, placement: BitwPlacement, key: u64) {
        self.bitw = Some(Bitw {
            placement,
            host_tx: BitwCodec::new(key),
            board_rx: BitwCodec::new(key),
            board_tx: BitwCodec::new(key ^ 0x5a5a),
            host_rx: BitwCodec::new(key ^ 0x5a5a),
        });
    }

    /// Command packets rejected by the board-side BITW authenticator.
    pub fn bitw_rejects(&self) -> u64 {
        self.bitw.as_ref().map_or(0, |b| b.board_rx.rejects())
    }

    /// Builds a rig with a checksum-verifying (hardened) board.
    pub fn with_hardened_board(params: PlantParams) -> Self {
        HardwareRig { board: UsbBoard::hardened(), ..Self::new(params) }
    }

    /// Presses the physical start button (clears the PLC E-STOP latch).
    pub fn press_start(&mut self, now: SimTime) {
        self.plc.press_start(now);
        self.note_estop_edges(now);
    }

    /// Presses the physical E-STOP button.
    pub fn press_estop(&mut self) {
        self.plc.press_estop();
    }

    /// Delivers one command packet through the interceptor chain to the
    /// board; the PLC observes the state byte of whatever actually arrived.
    ///
    /// With BITW enabled, the placement decides what the interceptors see:
    /// `Wire` (the real retrofit) encrypts downstream of the host, so the
    /// in-host malware still sees and mutates plaintext; `Host` encrypts
    /// upstream of `write`, so interceptors see only ciphertext and any
    /// mutation is rejected by the board-side authenticator.
    pub fn deliver_command(&mut self, pkt: &UsbCommandPacket, now: SimTime) -> WriteOutcome {
        // The write chain takes ownership of its input and hands the
        // delivered bytes to the caller inside the outcome, so this frame
        // is a genuine transfer; everything downstream (seal, open, the
        // wire round trip) reuses rig-held scratch buffers.
        let encoded = pkt.encode();
        let mut frame = Vec::with_capacity(encoded.len() + crate::bitw::BITW_OVERHEAD);
        let host_sealed = match &mut self.bitw {
            Some(b) if b.placement == BitwPlacement::Host => {
                b.host_tx.seal_into(&encoded, &mut frame);
                true
            }
            _ => {
                frame.extend_from_slice(&encoded);
                false
            }
        };
        let outcome = self.channel.write(frame, now);
        if let Some(bytes) = &outcome.delivered {
            // The wire segment between chain and board.
            let mut open_buf = std::mem::take(&mut self.open_scratch);
            let at_board: Option<&[u8]> = match &mut self.bitw {
                Some(b) if host_sealed => {
                    if b.board_rx.open_into(bytes, &mut open_buf) {
                        Some(&open_buf)
                    } else {
                        None
                    }
                }
                Some(b) if b.placement == BitwPlacement::Wire => {
                    // Encryptor and decryptor bracket an uncompromised
                    // cable: a lossless round trip (the malware already ran
                    // upstream, on plaintext — the paper's TOCTOU point).
                    b.host_tx.seal_into(bytes, &mut self.wire_scratch);
                    if b.board_rx.open_into(&self.wire_scratch, &mut open_buf) {
                        Some(&open_buf)
                    } else {
                        None
                    }
                }
                _ => Some(bytes),
            };
            if let Some(clear) = at_board {
                if let Ok(decoded) = self.board.receive(clear) {
                    self.plc.observe(decoded.state, decoded.watchdog, now);
                }
            }
            self.open_scratch = open_buf;
        }
        self.note_estop_edges(now);
        outcome
    }

    /// Advances the physical world by one control period: PLC deadline
    /// check, brake actuation, motor torques from the latched DAC words,
    /// plant integration.
    pub fn step(&mut self, now: SimTime) {
        let _cycle = self.spans.begin(spans::HW_BOARD_CYCLE);
        self.plc.tick(now);
        if self.plc.brakes_released() {
            self.plant.release_brakes();
        } else {
            self.plant.engage_brakes();
        }
        let dac3 = self.board.positioning_dac();
        let torques = self.plant.params().dac_to_torque(&dac3);
        let latched = self.board.latched_dac();
        let mut wrist = [0.0; WRIST_AXES];
        for i in 0..WRIST_AXES {
            wrist[i] = f64::from(latched[3 + i]) * WRIST_RAD_PER_COUNT;
        }
        self.plant.set_wrist_targets(wrist);
        self.plant.step_control_period(&torques);
        self.check_overspeed();
        self.note_estop_edges(now);
    }

    /// Motor-controller over-speed protection: compares consecutive encoder
    /// snapshots (one control period apart) against [`OVERSPEED_LIMITS`].
    fn check_overspeed(&mut self) {
        let reading = self.plant.read_encoders().counts;
        if let Some(last) = self.last_encoder {
            if !self.plant.brakes_engaged() {
                let cpr = self.plant.params().encoder_counts_per_rad;
                for i in 0..3 {
                    let speed = f64::from(reading[i] - last[i]).abs() / cpr / 1e-3;
                    if speed > OVERSPEED_LIMITS[i] {
                        self.plc.latch_hardware_fault();
                    }
                }
            }
        }
        self.last_encoder = Some(reading);
    }

    /// Builds the feedback packet, passes it through the read interceptors,
    /// and returns what the control software sees.
    pub fn read_feedback(&mut self, now: SimTime) -> UsbFeedbackPacket {
        let reading = self.plant.read_encoders();
        let mut encoders = [0i32; DAC_CHANNELS];
        encoders[..3].copy_from_slice(&reading.counts);
        encoders[3..3 + WRIST_AXES].copy_from_slice(&reading.wrist_counts);
        let mut fb = self.board.make_feedback(encoders);
        fb.plc_fault = self.plc.estop().is_some();
        let encoded = fb.encode();
        let mut frame = std::mem::take(&mut self.rx_frame);
        frame.clear();
        match &mut self.bitw {
            Some(b) if b.placement == BitwPlacement::Host => {
                b.board_tx.seal_into(&encoded, &mut frame);
            }
            _ => frame.extend_from_slice(&encoded),
        }
        // The read chain returns the same storage it was handed (possibly
        // mutated in place), so the frame is reclaimed below.
        let bytes = self.channel.read(frame, now);
        // A mangled feedback packet falls back to the unmodified reading —
        // the control software has no way to detect it either way, but the
        // simulation must stay well-formed.
        let pkt = match &mut self.bitw {
            Some(b) if b.placement == BitwPlacement::Host => {
                // Tampered ciphertext fails authentication; the driver
                // re-reads the register (same cycle) and gets the clean
                // snapshot.
                if b.host_rx.open_into(&bytes, &mut self.open_scratch) {
                    UsbFeedbackPacket::decode_unchecked(&self.open_scratch).unwrap_or(fb)
                } else {
                    fb
                }
            }
            _ => UsbFeedbackPacket::decode_unchecked(&bytes).unwrap_or(fb),
        };
        self.rx_frame = bytes;
        pkt
    }

    /// Reconstructs motor positions from a feedback packet (the control
    /// software's decode step).
    pub fn decode_motor_positions(&self, fb: &UsbFeedbackPacket) -> MotorState {
        let reading = EncoderReading {
            counts: [fb.encoders[0], fb.encoders[1], fb.encoders[2]],
            wrist_counts: [fb.encoders[3], fb.encoders[4], fb.encoders[5], fb.encoders[6]],
        };
        self.plant.decode_encoders(&reading)
    }

    /// The PLC's E-STOP latch, if set.
    pub fn estop(&self) -> Option<EStopCause> {
        self.plc.estop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RobotState;
    use simbus::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pedal_down(dac0: i16, wd: bool) -> UsbCommandPacket {
        let mut dac = [0i16; DAC_CHANNELS];
        dac[0] = dac0;
        UsbCommandPacket { state: RobotState::PedalDown, watchdog: wd, dac }
    }

    /// Runs a healthy Pedal-Down session applying `dac0` for `ms` periods.
    fn run_session(rig: &mut HardwareRig, dac0: i16, ms: u64) {
        rig.press_start(at(0));
        for t in 0..ms {
            rig.deliver_command(&pedal_down(dac0, t % 2 == 0), at(t));
            rig.step(at(t));
        }
    }

    #[test]
    fn motors_move_only_in_pedal_down() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        rig.press_start(at(0));
        let m0 = rig.plant.state().motor_pos();
        // Pedal Up with a big DAC: brakes stay on, nothing moves.
        for t in 0..20 {
            let mut pkt = pedal_down(8000, t % 2 == 0);
            pkt.state = RobotState::PedalUp;
            rig.deliver_command(&pkt, at(t));
            rig.step(at(t));
        }
        assert_eq!(rig.plant.state().motor_pos(), m0);
        // Pedal Down: the same DAC moves the shoulder.
        for t in 20..60 {
            rig.deliver_command(&pedal_down(8000, t % 2 == 0), at(t));
            rig.step(at(t));
        }
        assert!(rig.plant.state().motor_pos().angles[0] > m0.angles[0]);
    }

    #[test]
    fn feedback_reflects_motion() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        let before = rig.read_feedback(at(0)).encoders[0];
        run_session(&mut rig, 6000, 50);
        let after = rig.read_feedback(at(50)).encoders[0];
        assert!(after > before, "encoder counts should increase: {before} -> {after}");
    }

    #[test]
    fn frozen_watchdog_triggers_estop_and_brakes() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        run_session(&mut rig, 2000, 20);
        assert!(rig.estop().is_none());
        // Watchdog stops toggling.
        for t in 20..40 {
            rig.deliver_command(&pedal_down(2000, true), at(t));
            rig.step(at(t));
        }
        assert_eq!(rig.estop(), Some(EStopCause::WatchdogTimeout));
        assert!(rig.plant.brakes_engaged());
    }

    #[test]
    fn estop_button_stops_motion_immediately() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        run_session(&mut rig, 5000, 30);
        rig.press_estop();
        let m = rig.plant.state().motor_pos();
        for t in 30..50 {
            rig.deliver_command(&pedal_down(5000, t % 2 == 0), at(t));
            rig.step(at(t));
        }
        assert_eq!(rig.plant.state().motor_pos(), m);
    }

    #[test]
    fn wrist_channels_drive_wrist_servos() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        rig.press_start(at(0));
        let mut dac = [0i16; DAC_CHANNELS];
        dac[3] = 10_000; // wrist channel
        for t in 0..400 {
            let pkt = UsbCommandPacket { state: RobotState::PedalDown, watchdog: t % 2 == 0, dac };
            rig.deliver_command(&pkt, at(t));
            rig.step(at(t));
        }
        let target = 10_000.0 * WRIST_RAD_PER_COUNT;
        assert!((rig.plant.state().wrist[0] - target).abs() < 0.05 * target.abs() + 1e-4);
    }

    #[test]
    fn decode_motor_positions_matches_plant() {
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        run_session(&mut rig, 3000, 40);
        let fb = rig.read_feedback(at(40));
        let decoded = rig.decode_motor_positions(&fb);
        let truth = rig.plant.state().motor_pos();
        let res = rig.plant.params().encoder_counts_per_rad;
        for i in 0..3 {
            assert!((decoded.angles[i] - truth.angles[i]).abs() <= 0.5 / res + 1e-12);
        }
    }

    #[test]
    fn observer_sees_estop_latch_and_clear_edges() {
        let obs = simbus::obs::shared_observer(16);
        let mut rig = HardwareRig::new(PlantParams::raven_ii());
        rig.set_observer(std::sync::Arc::clone(&obs));
        run_session(&mut rig, 2000, 20);
        // Watchdog freezes -> PLC latches; exactly one latch event despite
        // the latch staying set for many cycles.
        for t in 20..40 {
            rig.deliver_command(&pedal_down(2000, true), at(t));
            rig.step(at(t));
        }
        {
            let o = obs.lock();
            assert_eq!(o.events.count_kind("estop.latched"), 1);
            assert_eq!(o.metrics.counter("estop.count.watchdog_timeout"), 1);
            let latched = o.events.iter().find(|e| e.kind == "estop.latched").unwrap();
            assert!(latched.time >= at(20), "latch reported at the cycle it happened");
        }
        rig.press_start(at(40));
        let o = obs.lock();
        // Two clears: the boot-time start press releasing the power-up
        // latch, and this one. The power-up latch itself is never reported
        // as an `estop.latched` edge (it is the rig's normal initial state).
        assert_eq!(o.events.count_kind("estop.cleared"), 2);
        assert_eq!(o.events.count_kind("estop.latched"), 1);
    }

    #[test]
    fn hardened_board_blocks_in_flight_corruption() {
        use crate::channel::{WriteAction, WriteContext, WriteInterceptor};
        #[derive(Debug)]
        struct Corruptor;
        impl WriteInterceptor for Corruptor {
            fn on_write(&mut self, buf: &mut Vec<u8>, _ctx: &WriteContext) -> WriteAction {
                buf[2] = buf[2].wrapping_add(50);
                WriteAction::Forward
            }
            fn name(&self) -> &str {
                "corruptor"
            }
        }
        let mut rig = HardwareRig::with_hardened_board(PlantParams::raven_ii());
        rig.channel.install(Box::new(Corruptor));
        rig.press_start(at(0));
        rig.deliver_command(&pedal_down(0, true), at(0));
        assert_eq!(rig.board.integrity_rejects(), 1);
        assert_eq!(rig.board.latched_dac()[0], 0);
    }
}
