//! "Bump-in-the-wire" (BITW) encryption retrofit — the alternative defense
//! the paper considers and rejects.
//!
//! §III.D: "encryption mechanisms (e.g., 'bump-in-the-wire' (BITW)
//! solutions) … may introduce significant overhead in the system operation
//! and still not eliminate the possibility of TOCTOU exploits." This module
//! makes that argument executable, in two placements:
//!
//! * [`BitwPlacement::Wire`] — the literal BITW retrofit (e.g. an SEL-3021
//!   serial encrypting transceiver, the paper's ref. \[31\]): the encryptor
//!   sits on the cable, *downstream* of the host. The `LD_PRELOAD` malware
//!   runs inside the host and sees plaintext before the encryptor —
//!   eavesdropping and injection both still work. Encryption at this
//!   placement buys nothing against the paper's threat model.
//! * [`BitwPlacement::Host`] — the counterfactual in-process variant
//!   (encrypt before the `write` call): the malware now sees only
//!   ciphertext, so the Byte-0 reconnaissance fails and blind injection
//!   garbles packets that the authenticated decryptor rejects — degrading
//!   the targeted attack to a denial of service (watchdog starvation →
//!   E-STOP), but still not preventing *that*.
//!
//! The cipher is a keystream XOR with a 32-bit per-packet nonce and a
//! 16-bit keyed authenticator — a simulation stand-in with the right
//! *structure* (confidentiality + integrity + per-packet freshness), not a
//! cryptographically reviewed construction.

use serde::{Deserialize, Serialize};

/// Where the encryptor sits relative to the compromised host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitwPlacement {
    /// On the cable, downstream of the host (the classic BITW retrofit).
    /// Interceptors in the host see plaintext.
    Wire,
    /// Inside the application, upstream of `write`. Interceptors see
    /// ciphertext.
    Host,
}

/// Wire overhead added to every packet: 4-byte nonce + 2-byte tag.
pub const BITW_OVERHEAD: usize = 6;

/// A paired encryptor/decryptor sharing a session key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitwCodec {
    key: u64,
    nonce: u32,
    /// Packets rejected by the authenticator.
    rejects: u64,
}

impl BitwCodec {
    /// Creates a codec for a session key.
    pub fn new(key: u64) -> Self {
        BitwCodec { key, nonce: 0, rejects: 0 }
    }

    /// Encrypts and authenticates one packet:
    /// `[nonce u32 LE] [ciphertext] [tag u16 LE]`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + BITW_OVERHEAD);
        self.seal_into(plaintext, &mut out);
        out
    }

    /// [`BitwCodec::seal`] into a caller-held buffer, which is cleared and
    /// resized to exactly `plaintext.len() + BITW_OVERHEAD` bytes.
    ///
    /// This is the per-cycle entry point: the rig keystream-seals every
    /// command and feedback packet, so it keeps one persistent buffer per
    /// direction and steady-state sealing never allocates (the buffer
    /// reaches packet size once and is reused thereafter).
    pub fn seal_into(&mut self, plaintext: &[u8], out: &mut Vec<u8>) {
        let nonce = self.nonce;
        self.nonce = self.nonce.wrapping_add(1);
        out.clear();
        out.resize(plaintext.len() + BITW_OVERHEAD, 0);
        out[..4].copy_from_slice(&nonce.to_le_bytes());
        let mut stream = keystream(self.key, nonce);
        for (slot, &b) in out[4..].iter_mut().zip(plaintext) {
            *slot = b ^ stream.next_byte();
        }
        let tag = authenticate(self.key, nonce, plaintext);
        let end = plaintext.len() + BITW_OVERHEAD;
        out[end - 2..end].copy_from_slice(&tag.to_le_bytes());
    }

    /// Verifies and decrypts one packet. Returns `None` on any tampering
    /// (wrong length, failed authenticator).
    pub fn open(&mut self, sealed: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(sealed.len().saturating_sub(BITW_OVERHEAD));
        if self.open_into(sealed, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`BitwCodec::open`] into a caller-held buffer. Returns `true` and
    /// leaves the plaintext in `out` on success; returns `false` and leaves
    /// `out` empty on any tampering. Allocation-free once the buffer has
    /// reached packet size — the counterpart of [`BitwCodec::seal_into`]
    /// for the rig's receive paths.
    pub fn open_into(&mut self, sealed: &[u8], out: &mut Vec<u8>) -> bool {
        out.clear();
        if sealed.len() < BITW_OVERHEAD {
            self.rejects += 1;
            return false;
        }
        let nonce = u32::from_le_bytes([sealed[0], sealed[1], sealed[2], sealed[3]]);
        let body = &sealed[4..sealed.len() - 2];
        let tag_wire = u16::from_le_bytes([sealed[sealed.len() - 2], sealed[sealed.len() - 1]]);
        let mut stream = keystream(self.key, nonce);
        out.resize(body.len(), 0);
        for (slot, &b) in out.iter_mut().zip(body) {
            *slot = b ^ stream.next_byte();
        }
        if authenticate(self.key, nonce, out) != tag_wire {
            self.rejects += 1;
            out.clear();
            return false;
        }
        true
    }

    /// Packets rejected so far.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }
}

struct Keystream {
    state: u64,
}

impl Keystream {
    fn next_byte(&mut self) -> u8 {
        // SplitMix64 step; one byte per step is plenty for a simulation.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as u8
    }
}

fn keystream(key: u64, nonce: u32) -> Keystream {
    Keystream { state: key ^ (u64::from(nonce) << 17) ^ 0x51ab_c0de_0000_0001 }
}

fn authenticate(key: u64, nonce: u32, plaintext: &[u8]) -> u16 {
    let mut h = key ^ u64::from(nonce).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in plaintext {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h = h.rotate_left(7);
    }
    (h ^ (h >> 32) ^ (h >> 16)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let mut tx = BitwCodec::new(0xfeed_beef);
        let mut rx = BitwCodec::new(0xfeed_beef);
        for i in 0..50u8 {
            let msg = vec![i; 18];
            let sealed = tx.seal(&msg);
            assert_eq!(sealed.len(), msg.len() + BITW_OVERHEAD);
            assert_eq!(rx.open(&sealed).unwrap(), msg);
        }
        assert_eq!(rx.rejects(), 0);
    }

    #[test]
    fn ciphertext_hides_the_state_byte() {
        // The whole point: Byte 0's small alphabet must vanish on the wire.
        let mut tx = BitwCodec::new(7);
        let mut values = std::collections::HashSet::new();
        for i in 0..512u32 {
            let mut pkt = vec![0x1F; 18]; // constant Pedal-Down byte 0
            pkt[1] = (i % 251) as u8;
            let sealed = tx.seal(&pkt);
            values.insert(sealed[4]); // first ciphertext byte (post-nonce)
        }
        assert!(
            values.len() > 128,
            "state byte still visible: only {} ciphertext values",
            values.len()
        );
    }

    #[test]
    fn any_tampering_is_rejected() {
        let mut tx = BitwCodec::new(42);
        let mut rx = BitwCodec::new(42);
        let sealed = tx.seal(&[1, 2, 3, 4, 5, 6, 7, 8]);
        for offset in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[offset] ^= 0x40;
            assert!(rx.open(&bad).is_none(), "tampering at {offset} accepted");
        }
        // The untampered packet still opens.
        assert!(rx.open(&sealed).is_some());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = BitwCodec::new(1);
        let mut rx = BitwCodec::new(2);
        assert!(rx.open(&tx.seal(&[9; 18])).is_none());
        assert_eq!(rx.rejects(), 1);
    }

    #[test]
    fn short_garbage_rejected() {
        let mut rx = BitwCodec::new(3);
        assert!(rx.open(&[1, 2, 3]).is_none());
        assert!(rx.open(&[]).is_none());
    }

    #[test]
    fn seal_into_and_open_into_reuse_storage_and_match_owned_api() {
        let mut tx = BitwCodec::new(0xfeed_beef);
        let mut tx2 = BitwCodec::new(0xfeed_beef);
        let mut rx = BitwCodec::new(0xfeed_beef);
        let mut sealed = Vec::new();
        let mut opened = Vec::new();
        let mut cap = 0;
        for i in 0..50u8 {
            let msg = vec![i; 18];
            tx.seal_into(&msg, &mut sealed);
            assert_eq!(sealed, tx2.seal(&msg), "seal_into must match seal");
            assert!(rx.open_into(&sealed, &mut opened));
            assert_eq!(opened, msg);
            if i == 0 {
                cap = sealed.capacity();
            } else {
                assert_eq!(sealed.capacity(), cap, "steady-state seal reallocated");
            }
        }
        // Tampering leaves the output empty and counts a reject.
        sealed[5] ^= 0x40;
        assert!(!rx.open_into(&sealed, &mut opened));
        assert!(opened.is_empty());
        assert_eq!(rx.rejects(), 1);
    }

    #[test]
    fn nonces_differ_per_packet() {
        // Identical plaintexts must not produce identical ciphertexts
        // (otherwise traffic analysis recovers the state byte patterns).
        let mut tx = BitwCodec::new(5);
        let a = tx.seal(&[0x1F; 18]);
        let b = tx.seal(&[0x1F; 18]);
        assert_ne!(a, b);
    }
}
