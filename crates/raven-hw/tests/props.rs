//! Property-based tests on the USB packet codec and board behavior.

use proptest::prelude::*;
use raven_hw::{
    PacketError, RobotState, UsbBoard, UsbCommandPacket, UsbFeedbackPacket, COMMAND_PACKET_LEN,
};

fn any_state() -> impl Strategy<Value = RobotState> {
    prop::sample::select(RobotState::all().to_vec())
}

fn any_command() -> impl Strategy<Value = UsbCommandPacket> {
    (any_state(), any::<bool>(), prop::array::uniform8(any::<i16>()))
        .prop_map(|(state, watchdog, dac)| UsbCommandPacket { state, watchdog, dac })
}

proptest! {
    #[test]
    fn command_roundtrip(pkt in any_command()) {
        let buf = pkt.encode();
        prop_assert_eq!(UsbCommandPacket::decode_unchecked(&buf).unwrap(), pkt);
        prop_assert_eq!(UsbCommandPacket::decode_verified(&buf).unwrap(), pkt);
    }

    #[test]
    fn feedback_roundtrip(
        state in any_state(),
        watchdog in any::<bool>(),
        encoders in prop::array::uniform8(-(1i32 << 23)..(1i32 << 23)),
    ) {
        let pkt = UsbFeedbackPacket { state, watchdog, plc_fault: false, encoders };
        let decoded = UsbFeedbackPacket::decode_unchecked(&pkt.encode()).unwrap();
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn any_single_byte_payload_change_defeats_the_checksum(
        pkt in any_command(),
        offset in 0usize..COMMAND_PACKET_LEN,
        delta in 1u8..=255,
    ) {
        // The additive checksum catches every single-byte modification —
        // the point is that the *stock board never checks it*.
        let mut buf = pkt.encode();
        buf[offset] = buf[offset].wrapping_add(delta);
        let verdict = UsbCommandPacket::decode_verified(&buf);
        let rejected = matches!(
            verdict,
            Err(PacketError::BadChecksum { .. }) | Err(PacketError::UnknownState { .. })
        );
        prop_assert!(rejected, "corrupted packet verified as clean: {verdict:?}");
    }

    #[test]
    fn stock_board_accepts_any_payload_corruption(
        pkt in any_command(),
        offset in 1usize..COMMAND_PACKET_LEN - 1, // skip byte 0 (state nibble)
        delta in 1u8..=255,
    ) {
        let mut board = UsbBoard::new();
        let mut buf = pkt.encode();
        buf[offset] = buf[offset].wrapping_add(delta);
        // The TOCTOU property: payload corruption always latches.
        prop_assert!(board.receive(&buf).is_ok());
    }

    #[test]
    fn hardened_board_never_latches_corrupted_payload(
        pkt in any_command(),
        offset in 1usize..COMMAND_PACKET_LEN - 1,
        delta in 1u8..=255,
    ) {
        let mut board = UsbBoard::hardened();
        board.receive(&pkt.encode()).unwrap();
        let latched_before = board.latched_dac();
        let mut buf = pkt.encode();
        buf[offset] = buf[offset].wrapping_add(delta);
        let _ = board.receive(&buf);
        prop_assert_eq!(board.latched_dac(), latched_before);
    }

    #[test]
    fn byte0_always_encodes_state_and_watchdog(pkt in any_command()) {
        let b0 = pkt.encode()[0];
        prop_assert_eq!(RobotState::from_nibble(b0 & 0x0F), Some(pkt.state));
        prop_assert_eq!(b0 & 0x10 != 0, pkt.watchdog);
        // Bits 5–7 are always clear (the analysis relies on a small alphabet).
        prop_assert_eq!(b0 & 0xE0, 0);
    }
}

// ---------------------------------------------------------------------------
// Minimizer fixture: a failing command packet shrinks to the first
// selectable state, a cleared watchdog, and a single ±1 DAC word.

#[test]
fn minimizer_reduces_command_packets_to_one_unit_dac_word() {
    use proptest::test_runner::run_reporting;
    let cfg = ProptestConfig::with_cases(64);
    let strat = (any_command(),);
    let failure = run_reporting("hw_minimizer_fixture", &cfg, &strat, |(pkt,)| {
        if pkt.dac.iter().any(|&d| d != 0) {
            Err(TestCaseError::fail("nonzero DAC word"))
        } else {
            Ok(())
        }
    })
    .expect_err("property was constructed to fail");
    let pkt = failure.minimized.0;
    assert_eq!(pkt.state, RobotState::all()[0], "select shrinks to the first option");
    assert!(!pkt.watchdog, "bools shrink to false");
    let nonzero: Vec<i16> = pkt.dac.iter().copied().filter(|&d| d != 0).collect();
    assert_eq!(nonzero.len(), 1, "{:?}", pkt.dac);
    assert_eq!(nonzero[0].abs(), 1, "smallest failing magnitude: {:?}", pkt.dac);
}
