//! Decoder robustness: random byte soup must never panic any decoder —
//! the parsers sit directly on attacker-controlled input.

use proptest::prelude::*;
use raven_hw::{BitwCodec, UsbBoard, UsbCommandPacket, UsbFeedbackPacket, COMMAND_PACKET_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn command_decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = UsbCommandPacket::decode_unchecked(&bytes);
        let _ = UsbCommandPacket::decode_verified(&bytes);
    }

    #[test]
    fn feedback_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = UsbFeedbackPacket::decode_unchecked(&bytes);
    }

    #[test]
    fn boards_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut stock = UsbBoard::new();
        let _ = stock.receive(&bytes);
        let mut hardened = UsbBoard::hardened();
        let _ = hardened.receive(&bytes);
        // Latches stay well-formed regardless.
        let _ = stock.latched_dac();
        let _ = hardened.latched_state();
    }

    #[test]
    fn bitw_open_never_panics(key in any::<u64>(), bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut codec = BitwCodec::new(key);
        let _ = codec.open(&bytes);
    }

    #[test]
    fn bitw_seal_open_roundtrip(key in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..40)) {
        let mut tx = BitwCodec::new(key);
        let mut rx = BitwCodec::new(key);
        let sealed = tx.seal(&msg);
        let opened = rx.open(&sealed);
        prop_assert_eq!(opened.as_deref(), Some(msg.as_slice()));
    }

    #[test]
    fn bitw_rejects_any_tampering(
        key in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 1..40),
        offset_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut tx = BitwCodec::new(key);
        let mut rx = BitwCodec::new(key);
        let mut sealed = tx.seal(&msg);
        let offset = ((sealed.len() - 1) as f64 * offset_frac) as usize;
        sealed[offset] = sealed[offset].wrapping_add(delta);
        prop_assert!(rx.open(&sealed).is_none(), "tampering at {offset} accepted");
    }

    #[test]
    fn bitw_cross_key_rejection(k1 in any::<u64>(), k2 in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 1..40)) {
        prop_assume!(k1 != k2);
        let mut tx = BitwCodec::new(k1);
        let mut rx = BitwCodec::new(k2);
        prop_assert!(rx.open(&tx.seal(&msg)).is_none());
    }
}

// ---------------------------------------------------------------------------
// Minimizer fixture: byte soup long enough to decode shrinks to exactly
// the boundary length, all zeros.

#[test]
fn minimizer_pins_the_exact_decodable_length() {
    use proptest::test_runner::run_reporting;
    let cfg = ProptestConfig::with_cases(64);
    let strat = (prop::collection::vec(any::<u8>(), 0..64),);
    let failure = run_reporting("fuzz_minimizer_fixture", &cfg, &strat, |(bytes,)| {
        if bytes.len() >= COMMAND_PACKET_LEN {
            Err(TestCaseError::fail("long enough to decode"))
        } else {
            Ok(())
        }
    })
    .expect_err("property was constructed to fail");
    let (bytes,) = failure.minimized;
    assert_eq!(bytes.len(), COMMAND_PACKET_LEN, "removal stops at the exact boundary");
    assert!(bytes.iter().all(|&b| b == 0), "payload bytes shrink to zero: {bytes:?}");
}
