//! Property-based tests for the math foundations.

use proptest::prelude::*;
use raven_math::angles::{shortest_delta, wrap_to_pi};
use raven_math::ode::{Euler, Integrator, Rk4};
use raven_math::stats::{percentile, ConfusionMatrix, RunningStats};
use raven_math::{Mat3, Pose, Quat, Vec3};

const PI: f64 = std::f64::consts::PI;

fn finite(range: f64) -> impl Strategy<Value = f64> {
    -range..range
}

fn vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (finite(range), finite(range), finite(range)).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_quat() -> impl Strategy<Value = Quat> {
    (vec3(1.0), finite(PI))
        .prop_filter("axis must have direction", |(axis, _)| axis.norm() > 1e-3)
        .prop_map(|(axis, angle)| Quat::from_axis_angle(axis, angle).unwrap())
}

proptest! {
    #[test]
    fn cross_product_orthogonality(a in vec3(100.0), b in vec3(100.0)) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm() + 1.0;
        prop_assert!((c.dot(a) / scale).abs() < 1e-9);
        prop_assert!((c.dot(b) / scale).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in vec3(100.0), b in vec3(100.0)) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn mat3_inverse_roundtrip(
        r0 in prop::array::uniform3(finite(10.0)),
        r1 in prop::array::uniform3(finite(10.0)),
        r2 in prop::array::uniform3(finite(10.0)),
        v in vec3(10.0),
    ) {
        let m = Mat3::from_rows(r0, r1, r2);
        // Only well-conditioned matrices: |det| large relative to the entries.
        prop_assume!(m.determinant().abs() > 1.0);
        let x = m.solve(v).unwrap();
        prop_assert!((m * x - v).norm() < 1e-6);
    }

    #[test]
    fn quat_rotation_preserves_norm(q in unit_quat(), v in vec3(50.0)) {
        prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-8 * (1.0 + v.norm()));
    }

    #[test]
    fn quat_matrix_agree(q in unit_quat(), v in vec3(10.0)) {
        prop_assert!((q.to_mat3() * v - q.rotate(v)).norm() < 1e-9 * (1.0 + v.norm()));
    }

    #[test]
    fn quat_mat_roundtrip(q in unit_quat()) {
        let q2 = Quat::from_mat3(&q.to_mat3());
        prop_assert!(q.angle_to(q2) < 1e-7);
    }

    #[test]
    fn pose_inverse_roundtrip(q in unit_quat(), t in vec3(10.0), p in vec3(10.0)) {
        let pose = Pose::new(q, t);
        let round = pose.inverse().transform_point(pose.transform_point(p));
        prop_assert!((round - p).norm() < 1e-9 * (1.0 + p.norm()));
    }

    #[test]
    fn pose_composition_associative(
        q1 in unit_quat(), t1 in vec3(5.0),
        q2 in unit_quat(), t2 in vec3(5.0),
        q3 in unit_quat(), t3 in vec3(5.0),
        p in vec3(5.0),
    ) {
        let a = Pose::new(q1, t1);
        let b = Pose::new(q2, t2);
        let c = Pose::new(q3, t3);
        let left = a.compose(&b).compose(&c).transform_point(p);
        let right = a.compose(&b.compose(&c)).transform_point(p);
        prop_assert!((left - right).norm() < 1e-8);
    }

    #[test]
    fn wrap_to_pi_in_range_and_congruent(a in finite(1e4)) {
        let w = wrap_to_pi(a);
        prop_assert!(w > -PI - 1e-9 && w <= PI + 1e-9);
        let k = (a - w) / (2.0 * PI);
        prop_assert!((k - k.round()).abs() < 1e-6);
    }

    #[test]
    fn shortest_delta_bounded(a in finite(100.0), b in finite(100.0)) {
        let d = shortest_delta(a, b);
        prop_assert!(d.abs() <= PI + 1e-9);
        // Moving by d from a lands on b modulo 2π.
        prop_assert!(wrap_to_pi(a + d - b).abs() < 1e-6);
    }

    #[test]
    fn running_stats_mean_bounded_by_min_max(xs in prop::collection::vec(finite(1e6), 1..200)) {
        let s: RunningStats = xs.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        prop_assert!(s.population_std() <= s.sample_std() + 1e-12);
    }

    #[test]
    fn percentile_within_sample_range(xs in prop::collection::vec(finite(1e3), 1..100), p in 0.0..100.0) {
        let v = percentile(&xs, p).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn confusion_identities(tp in 0u64..1000, fn_ in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000) {
        let cm = ConfusionMatrix { tp, fn_, fp, tn };
        prop_assert!(cm.accuracy() >= 0.0 && cm.accuracy() <= 1.0);
        prop_assert!(cm.tpr() >= 0.0 && cm.tpr() <= 1.0);
        prop_assert!(cm.fpr() >= 0.0 && cm.fpr() <= 1.0);
        prop_assert!(cm.f1() >= 0.0 && cm.f1() <= 1.0);
        prop_assert_eq!(cm.total(), tp + fn_ + fp + tn);
    }

    #[test]
    fn rk4_not_worse_than_euler_on_decay(dt in 1e-4f64..1e-2, x0 in 0.1f64..10.0) {
        let f = |s: &[f64; 1], _t: f64| [-s[0]];
        let steps = 100usize;
        let mut se = [x0];
        let mut sr = [x0];
        for _ in 0..steps {
            se = Euler.step(&se, 0.0, dt, &f);
            sr = Rk4.step(&sr, 0.0, dt, &f);
        }
        let exact = x0 * (-(steps as f64) * dt).exp();
        prop_assert!((sr[0] - exact).abs() <= (se[0] - exact).abs() + 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Minimizer fixture: a deliberately failing property, driven through the
// reporting runner, pins the shape of the shrunk counterexample.

#[test]
fn minimizer_pins_the_smallest_out_of_band_angle() {
    use proptest::test_runner::run_reporting;
    let cfg = ProptestConfig::with_cases(64);
    let strat = (0.0f64..10.0,);
    let failure = run_reporting("math_minimizer_fixture", &cfg, &strat, |(x,)| {
        if wrap_to_pi(x).abs() >= 1.0 {
            Err(TestCaseError::fail("wrapped angle left the claimed band"))
        } else {
            Ok(())
        }
    })
    .expect_err("property was constructed to fail");
    // The failing set starts at exactly 1.0; the bisection walks down to
    // the boundary from whichever sample tripped first.
    let min = failure.minimized.0;
    assert!((1.0..1.0 + 1e-6).contains(&min), "minimized to the band edge, got {min}");
    assert!(failure.original.0 >= min, "{failure:?}");
}
