//! Mathematical foundations for the raven-guard reproduction of
//! *"Targeted Attacks on Teleoperated Surgical Robots: Dynamic Model-based
//! Detection and Mitigation"* (DSN 2016).
//!
//! The paper's dynamic model (§IV.A.1) integrates two sets of second-order
//! ordinary differential equations (motor and link dynamics) with the explicit
//! Euler and 4th-order Runge–Kutta methods, and its detector (§IV.C) learns
//! alarm thresholds as high percentiles of instant velocities over fault-free
//! runs. This crate provides exactly those foundations:
//!
//! * [`vec3::Vec3`], [`mat3::Mat3`], [`quat::Quat`], [`se3::Pose`] — 3-D
//!   geometry used by the kinematic chain (Fig. 2 of the paper);
//! * [`ode`] — generic fixed-step integrators ([`ode::Euler`], [`ode::Rk4`])
//!   over user-defined state vectors;
//! * [`stats`] — running summary statistics, percentile estimation for
//!   threshold learning, and the confusion-matrix metrics (ACC/TPR/FPR/F1)
//!   reported in Table IV;
//! * [`angles`] — angle wrapping and unit conversions.
//!
//! # Example
//!
//! ```
//! use raven_math::ode::{Euler, Integrator};
//!
//! // Integrate a unit-gain first-order lag: x' = -x, x(0) = 1.
//! let euler = Euler;
//! let mut x = [1.0_f64];
//! for _ in 0..1000 {
//!     x = euler.step(&x, 0.0, 1e-3, &|s: &[f64; 1], _t| [-s[0]]);
//! }
//! assert!((x[0] - (-1.0_f64).exp()).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]

pub mod angles;
pub mod mat3;
pub mod ode;
pub mod quat;
pub mod se3;
pub mod stats;
pub mod vec3;

pub use mat3::Mat3;
pub use quat::Quat;
pub use se3::Pose;
pub use vec3::Vec3;
