//! Fixed-step integrators for ordinary differential equations.
//!
//! The paper (§IV.A.1) solves the robot's motor and link dynamics — two sets
//! of second-order ODEs rewritten in first-order form — with the explicit
//! Euler and classical 4th-order Runge–Kutta methods at a 1 ms step, and
//! reports their accuracy/time trade-off in Fig. 8. [`Euler`] and [`Rk4`]
//! are those two methods; [`Method`] selects between them at runtime, which
//! is how the Fig. 8 validation harness sweeps integrators.
//!
//! States are fixed-size arrays `[f64; N]`; the derivative is any
//! `Fn(&[f64; N], f64) -> [f64; N]`.

use serde::{Deserialize, Serialize};

/// A fixed-step ODE integrator over `[f64; N]` states.
///
/// # Example
///
/// ```
/// use raven_math::ode::{Integrator, Rk4};
///
/// // Harmonic oscillator: x'' = -x, as first-order system [x, v].
/// let f = |s: &[f64; 2], _t: f64| [s[1], -s[0]];
/// let mut s = [1.0, 0.0];
/// let rk4 = Rk4;
/// for _ in 0..1000 {
///     s = rk4.step(&s, 0.0, std::f64::consts::TAU / 1000.0, &f);
/// }
/// // One full period returns to the initial state.
/// assert!((s[0] - 1.0).abs() < 1e-9 && s[1].abs() < 1e-9);
/// ```
pub trait Integrator {
    /// Advances `state` from time `t` by `dt` under the derivative field
    /// `deriv`, returning the next state.
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N];
}

/// The explicit (forward) Euler method. First-order accurate; the cheapest
/// option and, per the paper's Fig. 8, the best time/accuracy trade-off for
/// the RAVEN model at a 1 ms step (0.011 ms/step on their testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Euler;

impl Integrator for Euler {
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        let d = deriv(state, t);
        let mut next = *state;
        for i in 0..N {
            next[i] += dt * d[i];
        }
        next
    }
}

/// The classical 4th-order Runge–Kutta method. Fourth-order accurate at four
/// derivative evaluations per step (paper: 0.032 ms/step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rk4;

impl Integrator for Rk4 {
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        let half = dt * 0.5;
        let k1 = deriv(state, t);
        let k2 = deriv(&offset(state, &k1, half), t + half);
        let k3 = deriv(&offset(state, &k2, half), t + half);
        let k4 = deriv(&offset(state, &k3, dt), t + dt);
        let mut next = *state;
        for i in 0..N {
            next[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        next
    }
}

/// Runtime-selectable integration method, used by the Fig. 8 model-validation
/// sweep and by the real-time estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Method {
    /// Explicit Euler (the paper's production choice).
    #[default]
    Euler,
    /// Classical 4th-order Runge–Kutta.
    Rk4,
}

impl Method {
    /// Advances `state` with the selected method.
    pub fn step<const N: usize, F>(self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        match self {
            Method::Euler => Euler.step(state, t, dt, deriv),
            Method::Rk4 => Rk4.step(state, t, dt, deriv),
        }
    }

    /// Number of derivative evaluations per step.
    pub fn evals_per_step(self) -> usize {
        match self {
            Method::Euler => 1,
            Method::Rk4 => 4,
        }
    }

    /// All supported methods, in paper order (RK4 first, as in Fig. 8).
    pub fn all() -> [Method; 2] {
        [Method::Rk4, Method::Euler]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Euler => f.write_str("Euler"),
            Method::Rk4 => f.write_str("4-th Order Runge Kutta"),
        }
    }
}

#[inline]
fn offset<const N: usize>(state: &[f64; N], k: &[f64; N], h: f64) -> [f64; N] {
    let mut out = *state;
    for i in 0..N {
        out[i] += h * k[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exponential decay x' = -x has exact solution e^{-t}.
    fn decay(s: &[f64; 1], _t: f64) -> [f64; 1] {
        [-s[0]]
    }

    fn integrate<I: Integrator>(method: &I, dt: f64, t_end: f64) -> f64 {
        let mut s = [1.0];
        let steps = (t_end / dt).round() as usize;
        let mut t = 0.0;
        for _ in 0..steps {
            s = method.step(&s, t, dt, &decay);
            t += dt;
        }
        s[0]
    }

    #[test]
    fn euler_converges_first_order() {
        let exact = (-1.0_f64).exp();
        let e1 = (integrate(&Euler, 1e-2, 1.0) - exact).abs();
        let e2 = (integrate(&Euler, 5e-3, 1.0) - exact).abs();
        let order = (e1 / e2).log2();
        assert!((order - 1.0).abs() < 0.1, "euler observed order {order}");
    }

    #[test]
    fn rk4_converges_fourth_order() {
        let exact = (-1.0_f64).exp();
        let e1 = (integrate(&Rk4, 1e-1, 1.0) - exact).abs();
        let e2 = (integrate(&Rk4, 5e-2, 1.0) - exact).abs();
        let order = (e1 / e2).log2();
        assert!((order - 4.0).abs() < 0.3, "rk4 observed order {order}");
    }

    #[test]
    fn rk4_is_much_more_accurate_than_euler_at_same_step() {
        let exact = (-1.0_f64).exp();
        let ee = (integrate(&Euler, 1e-2, 1.0) - exact).abs();
        let er = (integrate(&Rk4, 1e-2, 1.0) - exact).abs();
        assert!(er < ee * 1e-3);
    }

    #[test]
    fn time_dependent_rhs() {
        // x' = t has exact solution t²/2.
        let f = |s: &[f64; 1], t: f64| {
            let _ = s;
            [t]
        };
        let mut s = [0.0];
        let dt = 1e-3;
        let mut t = 0.0;
        for _ in 0..1000 {
            s = Rk4.step(&s, t, dt, &f);
            t += dt;
        }
        assert!((s[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn method_dispatch_matches_direct_calls() {
        let s = [0.7, -0.2];
        let f = |s: &[f64; 2], _t: f64| [s[1], -s[0] - 0.1 * s[1]];
        assert_eq!(Method::Euler.step(&s, 0.0, 1e-3, &f), Euler.step(&s, 0.0, 1e-3, &f));
        assert_eq!(Method::Rk4.step(&s, 0.0, 1e-3, &f), Rk4.step(&s, 0.0, 1e-3, &f));
        assert_eq!(Method::Euler.evals_per_step(), 1);
        assert_eq!(Method::Rk4.evals_per_step(), 4);
    }

    #[test]
    fn second_order_system_energy_roughly_conserved_by_rk4() {
        // Undamped oscillator: energy E = (x² + v²)/2 should be stable under RK4.
        let f = |s: &[f64; 2], _t: f64| [s[1], -s[0]];
        let mut s = [1.0, 0.0];
        for _ in 0..10_000 {
            s = Rk4.step(&s, 0.0, 1e-2, &f);
        }
        let energy = 0.5 * (s[0] * s[0] + s[1] * s[1]);
        assert!((energy - 0.5).abs() < 1e-6, "energy drifted to {energy}");
    }
}
