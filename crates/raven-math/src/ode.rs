//! Fixed-step integrators for ordinary differential equations.
//!
//! The paper (§IV.A.1) solves the robot's motor and link dynamics — two sets
//! of second-order ODEs rewritten in first-order form — with the explicit
//! Euler and classical 4th-order Runge–Kutta methods at a 1 ms step, and
//! reports their accuracy/time trade-off in Fig. 8. [`Euler`] and [`Rk4`]
//! are those two methods; [`Method`] selects between them at runtime, which
//! is how the Fig. 8 validation harness sweeps integrators.
//!
//! States are fixed-size arrays `[f64; N]`; the derivative is any
//! `Fn(&[f64; N], f64) -> [f64; N]`.

use serde::{Deserialize, Serialize};

/// A fixed-step ODE integrator over `[f64; N]` states.
///
/// # Example
///
/// ```
/// use raven_math::ode::{Integrator, Rk4};
///
/// // Harmonic oscillator: x'' = -x, as first-order system [x, v].
/// let f = |s: &[f64; 2], _t: f64| [s[1], -s[0]];
/// let mut s = [1.0, 0.0];
/// let rk4 = Rk4;
/// for _ in 0..1000 {
///     s = rk4.step(&s, 0.0, std::f64::consts::TAU / 1000.0, &f);
/// }
/// // One full period returns to the initial state.
/// assert!((s[0] - 1.0).abs() < 1e-9 && s[1].abs() < 1e-9);
/// ```
pub trait Integrator {
    /// Advances `state` from time `t` by `dt` under the derivative field
    /// `deriv`, returning the next state.
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N];
}

/// The explicit (forward) Euler method. First-order accurate; the cheapest
/// option and, per the paper's Fig. 8, the best time/accuracy trade-off for
/// the RAVEN model at a 1 ms step (0.011 ms/step on their testbed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Euler;

impl Integrator for Euler {
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        let d = deriv(state, t);
        let mut next = *state;
        for i in 0..N {
            next[i] += dt * d[i];
        }
        next
    }
}

/// The classical 4th-order Runge–Kutta method. Fourth-order accurate at four
/// derivative evaluations per step (paper: 0.032 ms/step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rk4;

impl Integrator for Rk4 {
    fn step<const N: usize, F>(&self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        let half = dt * 0.5;
        let k1 = deriv(state, t);
        let k2 = deriv(&offset(state, &k1, half), t + half);
        let k3 = deriv(&offset(state, &k2, half), t + half);
        let k4 = deriv(&offset(state, &k3, dt), t + dt);
        let mut next = *state;
        for i in 0..N {
            next[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        next
    }
}

/// Runtime-selectable integration method, used by the Fig. 8 model-validation
/// sweep and by the real-time estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Method {
    /// Explicit Euler (the paper's production choice).
    #[default]
    Euler,
    /// Classical 4th-order Runge–Kutta.
    Rk4,
}

impl Method {
    /// Advances `state` with the selected method.
    pub fn step<const N: usize, F>(self, state: &[f64; N], t: f64, dt: f64, deriv: &F) -> [f64; N]
    where
        F: Fn(&[f64; N], f64) -> [f64; N],
    {
        match self {
            Method::Euler => Euler.step(state, t, dt, deriv),
            Method::Rk4 => Rk4.step(state, t, dt, deriv),
        }
    }

    /// Number of derivative evaluations per step.
    pub fn evals_per_step(self) -> usize {
        match self {
            Method::Euler => 1,
            Method::Rk4 => 4,
        }
    }

    /// All supported methods, in paper order (RK4 first, as in Fig. 8).
    pub fn all() -> [Method; 2] {
        [Method::Rk4, Method::Euler]
    }
}

/// Preallocated derivative/stage storage for [`Method::step_batch`].
///
/// All five slices must have the same length as the flattened state
/// (`dims * lanes`). `k2`–`k4` and `stage` are only touched by RK4, but
/// Euler callers still provide them so one scratch allocation serves
/// either method without branching at the call site. The slices are
/// borrowed, not owned, so hot paths can hand in storage allocated once
/// at construction (heap for many lanes, stack arrays for a single
/// lane) and the step itself never allocates.
#[derive(Debug)]
pub struct BatchScratch<'a> {
    /// First derivative evaluation (the only one Euler uses).
    pub k1: &'a mut [f64],
    /// Second RK4 stage derivative.
    pub k2: &'a mut [f64],
    /// Third RK4 stage derivative.
    pub k3: &'a mut [f64],
    /// Fourth RK4 stage derivative.
    pub k4: &'a mut [f64],
    /// Stage-state buffer (`state + h·k`) fed back into `deriv`.
    pub stage: &'a mut [f64],
}

impl Method {
    /// Advances a flattened batch of states by one step.
    ///
    /// `state` and `out` hold `dims * lanes` elements; the derivative
    /// callback receives the full flattened state and writes the full
    /// flattened derivative. The per-element arithmetic is *exactly*
    /// the scalar [`Method::step`] expressions (`x + dt·k₁` for Euler;
    /// `x + h·kᵢ` stages and `x + dt/6·(k₁ + 2k₂ + 2k₃ + k₄)` for RK4),
    /// so each lane of a batched step is bit-identical to an
    /// independent scalar step of that lane — the contract the
    /// dynamics-estimator SoA kernel and its equivalence suite pin.
    pub fn step_batch<F>(
        self,
        state: &[f64],
        t: f64,
        dt: f64,
        deriv: &mut F,
        scratch: &mut BatchScratch<'_>,
        out: &mut [f64],
    ) where
        F: FnMut(&[f64], f64, &mut [f64]),
    {
        let n = state.len();
        assert_eq!(out.len(), n, "out length must match state length");
        assert_eq!(scratch.k1.len(), n, "scratch k1 length must match state length");
        match self {
            Method::Euler => {
                deriv(state, t, scratch.k1);
                for i in 0..n {
                    out[i] = state[i] + dt * scratch.k1[i];
                }
            }
            Method::Rk4 => {
                assert_eq!(scratch.k2.len(), n, "scratch k2 length must match state length");
                assert_eq!(scratch.k3.len(), n, "scratch k3 length must match state length");
                assert_eq!(scratch.k4.len(), n, "scratch k4 length must match state length");
                assert_eq!(scratch.stage.len(), n, "scratch stage length must match state length");
                let half = dt * 0.5;
                deriv(state, t, scratch.k1);
                for ((s, &x), &k) in scratch.stage.iter_mut().zip(state).zip(scratch.k1.iter()) {
                    *s = x + half * k;
                }
                deriv(scratch.stage, t + half, scratch.k2);
                for ((s, &x), &k) in scratch.stage.iter_mut().zip(state).zip(scratch.k2.iter()) {
                    *s = x + half * k;
                }
                deriv(scratch.stage, t + half, scratch.k3);
                for ((s, &x), &k) in scratch.stage.iter_mut().zip(state).zip(scratch.k3.iter()) {
                    *s = x + dt * k;
                }
                deriv(scratch.stage, t + dt, scratch.k4);
                for i in 0..n {
                    out[i] = state[i]
                        + dt / 6.0
                            * (scratch.k1[i]
                                + 2.0 * scratch.k2[i]
                                + 2.0 * scratch.k3[i]
                                + scratch.k4[i]);
                }
            }
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Euler => f.write_str("Euler"),
            Method::Rk4 => f.write_str("4-th Order Runge Kutta"),
        }
    }
}

#[inline]
fn offset<const N: usize>(state: &[f64; N], k: &[f64; N], h: f64) -> [f64; N] {
    let mut out = *state;
    for i in 0..N {
        out[i] += h * k[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exponential decay x' = -x has exact solution e^{-t}.
    fn decay(s: &[f64; 1], _t: f64) -> [f64; 1] {
        [-s[0]]
    }

    fn integrate<I: Integrator>(method: &I, dt: f64, t_end: f64) -> f64 {
        let mut s = [1.0];
        let steps = (t_end / dt).round() as usize;
        let mut t = 0.0;
        for _ in 0..steps {
            s = method.step(&s, t, dt, &decay);
            t += dt;
        }
        s[0]
    }

    #[test]
    fn euler_converges_first_order() {
        let exact = (-1.0_f64).exp();
        let e1 = (integrate(&Euler, 1e-2, 1.0) - exact).abs();
        let e2 = (integrate(&Euler, 5e-3, 1.0) - exact).abs();
        let order = (e1 / e2).log2();
        assert!((order - 1.0).abs() < 0.1, "euler observed order {order}");
    }

    #[test]
    fn rk4_converges_fourth_order() {
        let exact = (-1.0_f64).exp();
        let e1 = (integrate(&Rk4, 1e-1, 1.0) - exact).abs();
        let e2 = (integrate(&Rk4, 5e-2, 1.0) - exact).abs();
        let order = (e1 / e2).log2();
        assert!((order - 4.0).abs() < 0.3, "rk4 observed order {order}");
    }

    #[test]
    fn rk4_is_much_more_accurate_than_euler_at_same_step() {
        let exact = (-1.0_f64).exp();
        let ee = (integrate(&Euler, 1e-2, 1.0) - exact).abs();
        let er = (integrate(&Rk4, 1e-2, 1.0) - exact).abs();
        assert!(er < ee * 1e-3);
    }

    #[test]
    fn time_dependent_rhs() {
        // x' = t has exact solution t²/2.
        let f = |s: &[f64; 1], t: f64| {
            let _ = s;
            [t]
        };
        let mut s = [0.0];
        let dt = 1e-3;
        let mut t = 0.0;
        for _ in 0..1000 {
            s = Rk4.step(&s, t, dt, &f);
            t += dt;
        }
        assert!((s[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn method_dispatch_matches_direct_calls() {
        let s = [0.7, -0.2];
        let f = |s: &[f64; 2], _t: f64| [s[1], -s[0] - 0.1 * s[1]];
        assert_eq!(Method::Euler.step(&s, 0.0, 1e-3, &f), Euler.step(&s, 0.0, 1e-3, &f));
        assert_eq!(Method::Rk4.step(&s, 0.0, 1e-3, &f), Rk4.step(&s, 0.0, 1e-3, &f));
        assert_eq!(Method::Euler.evals_per_step(), 1);
        assert_eq!(Method::Rk4.evals_per_step(), 4);
    }

    /// A two-dim damped oscillator flattened over `lanes` lanes in
    /// dim-major layout (`x[d * lanes + lane]`), matching the layout the
    /// dynamics batch kernel uses.
    fn batch_oscillator(lanes: usize) -> impl FnMut(&[f64], f64, &mut [f64]) {
        move |x: &[f64], _t: f64, dx: &mut [f64]| {
            for l in 0..lanes {
                dx[l] = x[lanes + l];
                dx[lanes + l] = -x[l] - 0.1 * x[lanes + l];
            }
        }
    }

    #[test]
    fn batch_step_single_lane_is_bit_identical_to_scalar_step() {
        let scalar = |s: &[f64; 2], _t: f64| [s[1], -s[0] - 0.1 * s[1]];
        for method in Method::all() {
            let mut s = [0.7, -0.2];
            let mut flat = s.to_vec();
            let (mut k1, mut k2, mut k3, mut k4, mut stage) =
                ([0.0; 2], [0.0; 2], [0.0; 2], [0.0; 2], [0.0; 2]);
            let mut out = [0.0; 2];
            for step in 0..500 {
                s = method.step(&s, 0.0, 1e-2, &scalar);
                let mut deriv = batch_oscillator(1);
                let mut scratch = BatchScratch {
                    k1: &mut k1,
                    k2: &mut k2,
                    k3: &mut k3,
                    k4: &mut k4,
                    stage: &mut stage,
                };
                method.step_batch(&flat, 0.0, 1e-2, &mut deriv, &mut scratch, &mut out);
                flat.copy_from_slice(&out);
                assert_eq!(flat.as_slice(), &s, "{method} diverged at step {step}");
            }
        }
    }

    #[test]
    fn batch_lanes_are_bit_identical_to_independent_scalar_lanes() {
        let scalar = |s: &[f64; 2], _t: f64| [s[1], -s[0] - 0.1 * s[1]];
        let lanes = 5;
        for method in Method::all() {
            // Seed each lane differently; dim-major flatten.
            let mut states: Vec<[f64; 2]> =
                (0..lanes).map(|l| [0.3 + 0.1 * l as f64, -0.5 + 0.2 * l as f64]).collect();
            let n = 2 * lanes;
            let mut flat = vec![0.0; n];
            for (l, s) in states.iter().enumerate() {
                flat[l] = s[0];
                flat[lanes + l] = s[1];
            }
            let mut scratch_store = vec![0.0; 5 * n];
            let mut out = vec![0.0; n];
            for _ in 0..200 {
                for s in &mut states {
                    *s = method.step(s, 0.0, 1e-2, &scalar);
                }
                let (k1, rest) = scratch_store.split_at_mut(n);
                let (k2, rest) = rest.split_at_mut(n);
                let (k3, rest) = rest.split_at_mut(n);
                let (k4, stage) = rest.split_at_mut(n);
                let mut scratch = BatchScratch { k1, k2, k3, k4, stage };
                let mut deriv = batch_oscillator(lanes);
                method.step_batch(&flat, 0.0, 1e-2, &mut deriv, &mut scratch, &mut out);
                flat.copy_from_slice(&out);
            }
            for (l, s) in states.iter().enumerate() {
                assert_eq!(flat[l], s[0], "{method} lane {l} position diverged");
                assert_eq!(flat[lanes + l], s[1], "{method} lane {l} velocity diverged");
            }
        }
    }

    #[test]
    fn second_order_system_energy_roughly_conserved_by_rk4() {
        // Undamped oscillator: energy E = (x² + v²)/2 should be stable under RK4.
        let f = |s: &[f64; 2], _t: f64| [s[1], -s[0]];
        let mut s = [1.0, 0.0];
        for _ in 0..10_000 {
            s = Rk4.step(&s, 0.0, 1e-2, &f);
        }
        let energy = 0.5 * (s[0] * s[0] + s[1] * s[1]);
        assert!((energy - 0.5).abs() < 1e-6, "energy drifted to {energy}");
    }
}
