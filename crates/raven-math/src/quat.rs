//! Unit quaternions for end-effector orientations (`ori`, `ori_d` in the
//! paper's kinematic chain, Fig. 2).

use serde::{Deserialize, Serialize};

use crate::mat3::Mat3;
use crate::vec3::Vec3;

/// A quaternion `w + xi + yj + zk`.
///
/// Most constructors produce unit quaternions representing rotations; use
/// [`Quat::normalized`] after arithmetic that may drift off the unit sphere.
///
/// # Example
///
/// ```
/// use raven_math::{Quat, Vec3};
///
/// let q = Quat::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2).unwrap();
/// assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, i component.
    pub x: f64,
    /// Vector part, j component.
    pub y: f64,
    /// Vector part, k component.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a quaternion from raw components.
    #[inline]
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about `axis`. Returns `None` when `axis`
    /// has no direction (norm below `1e-12`).
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Option<Quat> {
        let axis = axis.normalized()?;
        let (s, c) = (angle * 0.5).sin_cos();
        Some(Quat::new(c, axis.x * s, axis.y * s, axis.z * s))
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the unit quaternion, or `None` when the norm is below `1e-12`.
    pub fn normalized(self) -> Option<Quat> {
        let n = self.norm();
        if n < 1e-12 {
            return None;
        }
        Some(Quat::new(self.w / n, self.x / n, self.y / n, self.z / n))
    }

    /// Conjugate; the inverse rotation for unit quaternions.
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Hamilton product `self * rhs` (apply `rhs` first, then `self`).
    /// Also available as the `*` operator.
    #[allow(clippy::should_implement_trait)] // kept for call-chaining ergonomics
    pub fn mul(self, rhs: Quat) -> Quat {
        Quat::new(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }

    /// Rotates a vector by this (unit) quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2u × (u × v + w v), u = vector part.
        let u = Vec3::new(self.x, self.y, self.z);
        v + 2.0 * u.cross(u.cross(v) + v * self.w)
    }

    /// The equivalent rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        Mat3::from_columns(self.rotate(Vec3::X), self.rotate(Vec3::Y), self.rotate(Vec3::Z))
    }

    /// Builds a unit quaternion from a proper rotation matrix (Shepperd's
    /// method, numerically stable branch selection).
    pub fn from_mat3(m: &Mat3) -> Quat {
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m.at(2, 1) - m.at(1, 2)) / s,
                (m.at(0, 2) - m.at(2, 0)) / s,
                (m.at(1, 0) - m.at(0, 1)) / s,
            )
        } else if m.at(0, 0) > m.at(1, 1) && m.at(0, 0) > m.at(2, 2) {
            let s = (1.0 + m.at(0, 0) - m.at(1, 1) - m.at(2, 2)).sqrt() * 2.0;
            Quat::new(
                (m.at(2, 1) - m.at(1, 2)) / s,
                0.25 * s,
                (m.at(0, 1) + m.at(1, 0)) / s,
                (m.at(0, 2) + m.at(2, 0)) / s,
            )
        } else if m.at(1, 1) > m.at(2, 2) {
            let s = (1.0 + m.at(1, 1) - m.at(0, 0) - m.at(2, 2)).sqrt() * 2.0;
            Quat::new(
                (m.at(0, 2) - m.at(2, 0)) / s,
                (m.at(0, 1) + m.at(1, 0)) / s,
                0.25 * s,
                (m.at(1, 2) + m.at(2, 1)) / s,
            )
        } else {
            let s = (1.0 + m.at(2, 2) - m.at(0, 0) - m.at(1, 1)).sqrt() * 2.0;
            Quat::new(
                (m.at(1, 0) - m.at(0, 1)) / s,
                (m.at(0, 2) + m.at(2, 0)) / s,
                (m.at(1, 2) + m.at(2, 1)) / s,
                0.25 * s,
            )
        };
        q.normalized().unwrap_or(Quat::IDENTITY)
    }

    /// Geodesic angle (radians, in `[0, π]`) between two unit quaternions.
    pub fn angle_to(self, rhs: Quat) -> f64 {
        let dot = (self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z)
            .abs()
            .clamp(0.0, 1.0);
        2.0 * dot.acos()
    }

    /// Spherical linear interpolation from `self` (`t = 0`) to `rhs` (`t = 1`).
    pub fn slerp(self, rhs: Quat, t: f64) -> Quat {
        let mut dot = self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z;
        // Take the short way around.
        let mut end = rhs;
        if dot < 0.0 {
            dot = -dot;
            end = Quat::new(-rhs.w, -rhs.x, -rhs.y, -rhs.z);
        }
        if dot > 0.9995 {
            // Nearly parallel: fall back to nlerp.
            let q = Quat::new(
                self.w + (end.w - self.w) * t,
                self.x + (end.x - self.x) * t,
                self.y + (end.y - self.y) * t,
                self.z + (end.z - self.z) * t,
            );
            return q.normalized().unwrap_or(Quat::IDENTITY);
        }
        let theta = dot.acos();
        let (s0, s1) = (((1.0 - t) * theta).sin() / theta.sin(), (t * theta).sin() / theta.sin());
        Quat::new(
            self.w * s0 + end.w * s1,
            self.x * s0 + end.x * s1,
            self.y * s0 + end.y * s1,
            self.z * s0 + end.z * s1,
        )
    }

    /// `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl std::ops::Mul for Quat {
    type Output = Quat;
    fn mul(self, rhs: Quat) -> Quat {
        Quat::mul(self, rhs)
    }
}

impl std::fmt::Display for Quat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.6}; {:.6}, {:.6}, {:.6}]", self.w, self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI: f64 = std::f64::consts::PI;

    #[test]
    fn identity_rotates_nothing() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert!((Quat::IDENTITY.rotate(v) - v).norm() < 1e-15);
    }

    #[test]
    fn axis_angle_basics() {
        let q = Quat::from_axis_angle(Vec3::Z, PI / 2.0).unwrap();
        assert!((q.rotate(Vec3::X) - Vec3::Y).norm() < 1e-12);
        assert!((q.rotate(Vec3::Y) + Vec3::X).norm() < 1e-12);
        // Rotation about the axis leaves the axis fixed.
        assert!((q.rotate(Vec3::Z) - Vec3::Z).norm() < 1e-12);
        assert!(Quat::from_axis_angle(Vec3::ZERO, 1.0).is_none());
    }

    #[test]
    fn conjugate_inverts_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.3), 1.1).unwrap();
        let v = Vec3::new(0.2, -0.7, 1.5);
        assert!((q.conjugate().rotate(q.rotate(v)) - v).norm() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let a = Quat::from_axis_angle(Vec3::X, 0.4).unwrap();
        let b = Quat::from_axis_angle(Vec3::Y, -0.9).unwrap();
        let v = Vec3::new(1.0, 2.0, 3.0);
        let via_product = a.mul(b).rotate(v);
        let sequential = a.rotate(b.rotate(v));
        assert!((via_product - sequential).norm() < 1e-12);
    }

    #[test]
    fn matrix_roundtrip() {
        for (axis, ang) in [
            (Vec3::X, 0.3),
            (Vec3::new(1.0, 1.0, 0.0), 2.2),
            (Vec3::new(-0.2, 0.5, 0.9), -1.4),
            (Vec3::Y, PI - 1e-3),
        ] {
            let q = Quat::from_axis_angle(axis, ang).unwrap();
            let m = q.to_mat3();
            assert!(m.is_rotation(1e-10));
            let q2 = Quat::from_mat3(&m);
            assert!(q.angle_to(q2) < 1e-9, "roundtrip failed for {q}");
        }
    }

    #[test]
    fn angle_to_self_is_zero() {
        let q = Quat::from_axis_angle(Vec3::Z, 0.8).unwrap();
        assert!(q.angle_to(q) < 1e-7);
        // q and -q represent the same rotation.
        let neg = Quat::new(-q.w, -q.x, -q.y, -q.z);
        assert!(q.angle_to(neg) < 1e-7);
    }

    #[test]
    fn slerp_endpoints_and_halfway() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, 1.0).unwrap();
        assert!(a.slerp(b, 0.0).angle_to(a) < 1e-9);
        assert!(a.slerp(b, 1.0).angle_to(b) < 1e-9);
        let mid = a.slerp(b, 0.5);
        let expect = Quat::from_axis_angle(Vec3::Z, 0.5).unwrap();
        assert!(mid.angle_to(expect) < 1e-9);
    }

    #[test]
    fn slerp_near_parallel_falls_back() {
        let a = Quat::from_axis_angle(Vec3::Z, 1e-9).unwrap();
        let b = Quat::IDENTITY;
        let q = a.slerp(b, 0.3);
        assert!((q.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operator_mul_matches_method() {
        let a = Quat::from_axis_angle(Vec3::X, 0.4).unwrap();
        let b = Quat::from_axis_angle(Vec3::Y, -0.9).unwrap();
        assert_eq!(a * b, a.mul(b));
    }

    #[test]
    fn normalized_unit() {
        let q = Quat::new(2.0, 0.0, 0.0, 0.0).normalized().unwrap();
        assert_eq!(q, Quat::IDENTITY);
        assert!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized().is_none());
    }
}
