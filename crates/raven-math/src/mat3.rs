//! 3×3 matrices (row-major), used for rotation matrices and the manipulator
//! inertia matrix `M(q)` of the link dynamics (paper §IV.A.1).

use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// A 3×3 matrix of `f64`, stored row-major.
///
/// # Example
///
/// ```
/// use raven_math::{Mat3, Vec3};
///
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { rows: [[0.0; 3]; 3] };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Creates a diagonal matrix.
    #[inline]
    pub const fn diagonal(d0: f64, d1: f64, d2: f64) -> Self {
        Mat3::from_rows([d0, 0.0, 0.0], [0.0, d1, 0.0], [0.0, 0.0, d2])
    }

    /// Creates a matrix whose columns are the given vectors.
    pub fn from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3::from_rows([c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z])
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c])
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c])
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row > 2` or `col > 2`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col]
    }

    /// Row `i` as a vector.
    #[inline]
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from(self.rows[i])
    }

    /// Column `j` as a vector.
    #[inline]
    pub fn column(&self, j: usize) -> Vec3 {
        Vec3::new(self.rows[0][j], self.rows[1][j], self.rows[2][j])
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_columns(self.row(0), self.row(1), self.row(2))
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        self.row(0).dot(self.row(1).cross(self.row(2)))
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        self.rows[0][0] + self.rows[1][1] + self.rows[2][2]
    }

    /// Matrix inverse, or `None` when `|det| < 1e-12` (singular).
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let c0 = self.column(0);
        let c1 = self.column(1);
        let c2 = self.column(2);
        // Rows of the inverse are the cross products of column pairs / det.
        let r0 = c1.cross(c2) / det;
        let r1 = c2.cross(c0) / det;
        let r2 = c0.cross(c1) / det;
        Some(Mat3::from_rows(r0.to_array(), r1.to_array(), r2.to_array()))
    }

    /// Solves `self * x = b` via the inverse, or `None` when singular.
    pub fn solve(&self, b: Vec3) -> Option<Vec3> {
        self.inverse().map(|inv| inv * b)
    }

    /// `true` when this is a proper rotation matrix (orthonormal, det ≈ +1)
    /// to tolerance `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let should_be_identity = *self * self.transpose();
        let mut err: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let target = if i == j { 1.0 } else { 0.0 };
                err = err.max((should_be_identity.at(i, j) - target).abs());
            }
        }
        err < tol && (self.determinant() - 1.0).abs() < tol
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.rows[i][j] = self.row(i).dot(rhs.column(j));
            }
        }
        out
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self;
        for row in &mut out.rows {
            for v in row {
                *v *= s;
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.rows[i][j] = self.rows[i][j] + rhs.rows[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.rows[i][j] = self.rows[i][j] - rhs.rows[i][j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI_2: f64 = std::f64::consts::FRAC_PI_2;

    fn approx(a: Mat3, b: Mat3, tol: f64) -> bool {
        (0..3).all(|i| (0..3).all(|j| (a.at(i, j) - b.at(i, j)).abs() < tol))
    }

    #[test]
    fn identity_is_neutral() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        assert_eq!(Mat3::IDENTITY * m, m);
        assert_eq!(m * Mat3::IDENTITY, m);
        assert_eq!(Mat3::IDENTITY * Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn rotations_are_rotations() {
        for ang in [-1.3, 0.0, 0.4, 2.9] {
            assert!(Mat3::rotation_x(ang).is_rotation(1e-12));
            assert!(Mat3::rotation_y(ang).is_rotation(1e-12));
            assert!(Mat3::rotation_z(ang).is_rotation(1e-12));
        }
    }

    #[test]
    fn rotation_z_maps_x_to_y() {
        let v = Mat3::rotation_z(PI_2) * Vec3::X;
        assert!((v - Vec3::Y).norm() < 1e-12);
        let v = Mat3::rotation_x(PI_2) * Vec3::Y;
        assert!((v - Vec3::Z).norm() < 1e-12);
        let v = Mat3::rotation_y(PI_2) * Vec3::Z;
        assert!((v - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn inverse_of_general_matrix() {
        let m = Mat3::from_rows([2.0, 1.0, 0.5], [-1.0, 3.0, 2.0], [0.0, 1.0, 4.0]);
        let inv = m.inverse().unwrap();
        assert!(approx(m * inv, Mat3::IDENTITY, 1e-12));
        assert!(approx(inv * m, Mat3::IDENTITY, 1e-12));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(m.inverse().is_none());
        assert!(m.solve(Vec3::X).is_none());
    }

    #[test]
    fn solve_matches_manual_solution() {
        let m = Mat3::diagonal(2.0, 4.0, 8.0);
        let x = m.solve(Vec3::new(2.0, 4.0, 8.0)).unwrap();
        assert!((x - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-12);
    }

    #[test]
    fn transpose_and_trace() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.transpose().at(0, 1), 4.0);
        assert_eq!(m.trace(), 15.0);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn determinant_of_rotation_is_one() {
        assert!((Mat3::rotation_y(0.77).determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Mat3::diagonal(1.0, 2.0, 3.0);
        let b = Mat3::diagonal(3.0, 2.0, 1.0);
        assert_eq!(a + b, Mat3::diagonal(4.0, 4.0, 4.0));
        assert_eq!(a - a, Mat3::ZERO);
        assert_eq!(a * 2.0, Mat3::diagonal(2.0, 4.0, 6.0));
    }
}
