//! Rigid-body poses (SE(3)) and Denavit–Hartenberg transforms for the
//! RAVEN II kinematic chain.

use serde::{Deserialize, Serialize};

use crate::mat3::Mat3;
use crate::quat::Quat;
use crate::vec3::Vec3;

/// A rigid-body pose: rotation followed by translation.
///
/// Composition follows the usual convention: `a.compose(&b)` maps a point
/// first through `b`, then through `a` — i.e. `T_a * T_b` as homogeneous
/// matrices.
///
/// # Example
///
/// ```
/// use raven_math::{Pose, Vec3};
///
/// let lift = Pose::from_translation(Vec3::new(0.0, 0.0, 1.0));
/// assert_eq!(lift.transform_point(Vec3::ZERO), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Orientation of the frame.
    pub rotation: Quat,
    /// Origin of the frame.
    pub translation: Vec3,
}

impl Pose {
    /// The identity pose.
    pub const IDENTITY: Pose = Pose { rotation: Quat::IDENTITY, translation: Vec3::ZERO };

    /// Creates a pose from a rotation and a translation.
    pub const fn new(rotation: Quat, translation: Vec3) -> Self {
        Pose { rotation, translation }
    }

    /// A pure translation.
    pub const fn from_translation(translation: Vec3) -> Self {
        Pose { rotation: Quat::IDENTITY, translation }
    }

    /// A pure rotation.
    pub const fn from_rotation(rotation: Quat) -> Self {
        Pose { rotation, translation: Vec3::ZERO }
    }

    /// Maps a point through this pose.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Rotates a direction (ignores translation).
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        self.rotation.rotate(d)
    }

    /// Pose composition: `self` applied after `rhs`.
    pub fn compose(&self, rhs: &Pose) -> Pose {
        Pose {
            rotation: self.rotation.mul(rhs.rotation),
            translation: self.transform_point(rhs.translation),
        }
    }

    /// The inverse pose.
    pub fn inverse(&self) -> Pose {
        let inv_rot = self.rotation.conjugate();
        Pose { rotation: inv_rot, translation: -inv_rot.rotate(self.translation) }
    }

    /// Rotation as a matrix.
    pub fn rotation_matrix(&self) -> Mat3 {
        self.rotation.to_mat3()
    }
}

impl std::fmt::Display for Pose {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pose {{ t: {}, r: {} }}", self.translation, self.rotation)
    }
}

/// Standard Denavit–Hartenberg parameters for one link of a serial chain.
///
/// The RAVEN II positioning mechanism is a spherical linkage: its first two
/// DH link twists are the fixed cable-drive angles of the mechanism, and the
/// third joint is prismatic (tool insertion). See `raven-kinematics` for the
/// concrete parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DhParam {
    /// Link length `a` (meters).
    pub a: f64,
    /// Link twist `alpha` (radians).
    pub alpha: f64,
    /// Link offset `d` (meters); variable for prismatic joints.
    pub d: f64,
    /// Joint angle `theta` (radians); variable for revolute joints.
    pub theta: f64,
}

impl DhParam {
    /// Creates a DH parameter row.
    pub const fn new(a: f64, alpha: f64, d: f64, theta: f64) -> Self {
        DhParam { a, alpha, d, theta }
    }

    /// The homogeneous transform of this link (standard DH convention):
    /// `Rz(theta) · Tz(d) · Tx(a) · Rx(alpha)`.
    pub fn transform(&self) -> Pose {
        let rz = Pose::from_rotation(
            Quat::from_axis_angle(Vec3::Z, self.theta).unwrap_or(Quat::IDENTITY),
        );
        let tz = Pose::from_translation(Vec3::new(0.0, 0.0, self.d));
        let tx = Pose::from_translation(Vec3::new(self.a, 0.0, 0.0));
        let rx = Pose::from_rotation(
            Quat::from_axis_angle(Vec3::X, self.alpha).unwrap_or(Quat::IDENTITY),
        );
        rz.compose(&tz).compose(&tx).compose(&rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PI_2: f64 = std::f64::consts::FRAC_PI_2;

    #[test]
    fn identity_pose_is_neutral() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Pose::IDENTITY.transform_point(p), p);
        let pose =
            Pose::new(Quat::from_axis_angle(Vec3::X, 0.7).unwrap(), Vec3::new(0.1, 0.2, 0.3));
        let composed = Pose::IDENTITY.compose(&pose);
        assert!((composed.transform_point(p) - pose.transform_point(p)).norm() < 1e-12);
    }

    #[test]
    fn compose_then_inverse_is_identity() {
        let a = Pose::new(Quat::from_axis_angle(Vec3::Y, 1.2).unwrap(), Vec3::new(1.0, 0.0, -2.0));
        let p = Vec3::new(-0.5, 3.0, 0.25);
        let round = a.inverse().transform_point(a.transform_point(p));
        assert!((round - p).norm() < 1e-12);
        let both = a.compose(&a.inverse());
        assert!((both.transform_point(p) - p).norm() < 1e-12);
    }

    #[test]
    fn composition_order_matters_and_matches_sequential() {
        let rot = Pose::from_rotation(Quat::from_axis_angle(Vec3::Z, PI_2).unwrap());
        let trans = Pose::from_translation(Vec3::X);
        // rot ∘ trans: translate first, then rotate.
        let p = rot.compose(&trans).transform_point(Vec3::ZERO);
        assert!((p - Vec3::Y).norm() < 1e-12);
        // trans ∘ rot: rotate first (no-op on origin), then translate.
        let p = trans.compose(&rot).transform_point(Vec3::ZERO);
        assert!((p - Vec3::X).norm() < 1e-12);
    }

    #[test]
    fn directions_ignore_translation() {
        let pose = Pose::new(Quat::IDENTITY, Vec3::new(10.0, 10.0, 10.0));
        assert_eq!(pose.transform_direction(Vec3::X), Vec3::X);
    }

    #[test]
    fn dh_pure_revolute() {
        // a = 0, alpha = 0, d = 0: pure rotation about Z by theta.
        let dh = DhParam::new(0.0, 0.0, 0.0, PI_2);
        let t = dh.transform();
        assert!((t.transform_point(Vec3::X) - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn dh_pure_prismatic() {
        // Only d set: pure translation along Z.
        let dh = DhParam::new(0.0, 0.0, 0.3, 0.0);
        let t = dh.transform();
        assert!((t.transform_point(Vec3::ZERO) - Vec3::new(0.0, 0.0, 0.3)).norm() < 1e-12);
    }

    #[test]
    fn dh_link_length_then_twist() {
        // a = 1 with alpha = 90°: frame advances along X then twists about X.
        let dh = DhParam::new(1.0, PI_2, 0.0, 0.0);
        let t = dh.transform();
        assert!((t.transform_point(Vec3::ZERO) - Vec3::X).norm() < 1e-12);
        // A point on new Y maps onto world Z (twist by +90° about X).
        assert!((t.transform_point(Vec3::Y) - (Vec3::X + Vec3::Z)).norm() < 1e-12);
    }

    #[test]
    fn rotation_matrix_agrees_with_quaternion() {
        let q = Quat::from_axis_angle(Vec3::new(0.3, -1.0, 0.4), 0.9).unwrap();
        let pose = Pose::from_rotation(q);
        let v = Vec3::new(0.1, 0.2, -0.3);
        assert!((pose.rotation_matrix() * v - q.rotate(v)).norm() < 1e-12);
    }
}
