//! Statistics used across the reproduction:
//!
//! * [`RunningStats`] — streaming min/max/mean/std (Welford), the format of
//!   Table II (syscall-overhead measurements);
//! * [`percentile`] / [`PercentileEstimator`] — high-percentile threshold
//!   learning for the anomaly detector (§IV.C: thresholds are the
//!   99.8–99.9th percentile of instant velocities over 600 fault-free runs);
//! * [`ConfusionMatrix`] — ACC/TPR/FPR/precision/F1, the metrics of Table IV.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics over a sequence of samples.
///
/// Uses Welford's algorithm, so it is numerically stable over millions of
/// samples (Table II aggregates 50,000 syscall timings per configuration).
///
/// # Example
///
/// ```
/// use raven_math::stats::RunningStats;
///
/// let stats: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(stats.mean(), 5.0);
/// assert!((stats.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population standard deviation (divides by `n`); `0.0` for fewer than
    /// two samples.
    pub fn population_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Sample standard deviation (divides by `n - 1`); `0.0` for fewer than
    /// two samples.
    pub fn sample_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl std::fmt::Display for RunningStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} max={:.3} mean={:.3} std={:.3}",
            self.count,
            self.min(),
            self.max(),
            self.mean(),
            self.sample_std()
        )
    }
}

/// Linear-interpolation percentile of a sample set.
///
/// `p` is in percent, e.g. `99.8`. The samples need not be sorted.
///
/// Returns `None` when `samples` is empty or `p` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// use raven_math::stats::percentile;
///
/// let v: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(percentile(&v, 50.0), Some(50.5));
/// assert_eq!(percentile(&v, 100.0), Some(100.0));
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// Percentile of an already-sorted (ascending) sample set.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi.min(n - 1)] - sorted[lo]) * frac
}

/// Accumulates samples and answers percentile queries; used by the threshold
/// learner over fault-free runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PercentileEstimator {
    samples: Vec<f64>,
}

impl PercentileEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. Non-finite samples are ignored (sensor glitches must
    /// not poison the learned threshold).
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
        }
    }

    /// Number of accepted samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been accepted.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `p`-th percentile, or `None` when empty or `p ∉ [0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile(&self.samples, p)
    }

    /// Midpoint of the band `[p_lo, p_hi]` — the paper picks thresholds
    /// "between the 99.8–99.9th percentiles" (§IV.C).
    pub fn percentile_band(&self, p_lo: f64, p_hi: f64) -> Option<f64> {
        Some(0.5 * (self.percentile(p_lo)? + self.percentile(p_hi)?))
    }

    /// The accepted samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another estimator's samples into this one.
    pub fn merge(&mut self, other: &PercentileEstimator) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl Extend<f64> for PercentileEstimator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for PercentileEstimator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut e = PercentileEstimator::new();
        e.extend(iter);
        e
    }
}

/// Binary-classification confusion matrix and derived metrics, as reported in
/// Table IV of the paper (ACC, TPR, FPR, F1; all in percent there).
///
/// # Example
///
/// ```
/// use raven_math::stats::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::default();
/// cm.record(true, true);   // detected attack: TP
/// cm.record(true, false);  // missed attack:  FN
/// cm.record(false, false); // quiet run:      TN
/// cm.record(false, true);  // false alarm:    FP
/// assert_eq!(cm.accuracy(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives: attack present and alarm raised.
    pub tp: u64,
    /// False negatives: attack present, no alarm.
    pub fn_: u64,
    /// False positives: no attack, alarm raised.
    pub fp: u64,
    /// True negatives: no attack, no alarm.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one labeled outcome.
    pub fn record(&mut self, attack_present: bool, alarm_raised: bool) {
        match (attack_present, alarm_raised) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total outcomes recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fn_ + self.fp + self.tn
    }

    /// Accuracy `(TP + TN) / total`, or `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// True-positive rate (recall) `TP / (TP + FN)`, or `0.0` when no
    /// positives were recorded.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate `FP / (FP + TN)`, or `0.0` when no negatives were
    /// recorded.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Precision `TP / (TP + FP)`, or `0.0` when no alarms were raised.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 score (harmonic mean of precision and recall), or `0.0` when
    /// undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.tpr();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fn_ += other.fn_;
        self.fp += other.fp;
        self.tn += other.tn;
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ACC={:.1}% TPR={:.1}% FPR={:.1}% F1={:.1}% (tp={} fn={} fp={} tn={})",
            self.accuracy() * 100.0,
            self.tpr() * 100.0,
            self.fpr() * 100.0,
            self.f1() * 100.0,
            self.tp,
            self.fn_,
            self.fp,
            self.tn
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Mean absolute error between two equal-length series.
///
/// Returns `None` when the series lengths differ or are zero.
pub fn mean_absolute_error(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    Some(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_known_values() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.population_std() - (1.25_f64).sqrt()).abs() < 1e-12);
        assert!((s.sample_std() - (5.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_std(), 0.0);
        let mut s = RunningStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.sample_std(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let all: RunningStats = xs.iter().copied().collect();
        let mut a: RunningStats = xs[..37].iter().copied().collect();
        let b: RunningStats = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_std() - all.sample_std()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&v, 101.0), None);
        assert_eq!(percentile(&v, -1.0), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&v, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_estimator_ignores_non_finite() {
        let mut e = PercentileEstimator::new();
        e.extend([1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.percentile(100.0), Some(3.0));
    }

    #[test]
    fn percentile_band_is_midpoint() {
        let e: PercentileEstimator = (1..=1000).map(f64::from).collect();
        let band = e.percentile_band(99.8, 99.9).unwrap();
        let lo = e.percentile(99.8).unwrap();
        let hi = e.percentile(99.9).unwrap();
        assert!((band - 0.5 * (lo + hi)).abs() < 1e-12);
        assert!(band > lo && band < hi);
    }

    #[test]
    fn percentile_monotone_in_p() {
        let e: PercentileEstimator = (0..500).map(|i| ((i * 7919) % 503) as f64).collect();
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = e.percentile(p).unwrap();
            assert!(v >= last, "percentile not monotone at p={p}");
            last = v;
        }
    }

    #[test]
    fn confusion_matrix_metrics() {
        let cm = ConfusionMatrix { tp: 90, fn_: 10, fp: 20, tn: 80 };
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!((cm.tpr() - 0.9).abs() < 1e-12);
        assert!((cm.fpr() - 0.2).abs() < 1e-12);
        assert!((cm.precision() - 90.0 / 110.0).abs() < 1e-12);
        let p = 90.0 / 110.0;
        let r = 0.9;
        assert!((cm.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_degenerate_cases() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.tpr(), 0.0);
        assert_eq!(cm.fpr(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        // Only negatives: TPR undefined -> 0, FPR well-defined.
        let mut cm = ConfusionMatrix::new();
        cm.record(false, true);
        cm.record(false, false);
        assert_eq!(cm.fpr(), 0.5);
        assert_eq!(cm.tpr(), 0.0);
    }

    #[test]
    fn confusion_matrix_merge() {
        let mut a = ConfusionMatrix { tp: 1, fn_: 2, fp: 3, tn: 4 };
        a.merge(&ConfusionMatrix { tp: 10, fn_: 20, fp: 30, tn: 40 });
        assert_eq!(a, ConfusionMatrix { tp: 11, fn_: 22, fp: 33, tn: 44 });
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mean_absolute_error(&[1.0, 2.0], &[2.0, 4.0]), Some(1.5));
        assert_eq!(mean_absolute_error(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mean_absolute_error(&[], &[]), None);
    }
}
