//! Angle utilities: wrapping, unit conversion, and shortest angular distance.

use std::f64::consts::PI;

/// Converts degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

/// Wraps an angle into `(-π, π]`.
///
/// # Example
///
/// ```
/// use raven_math::angles::wrap_to_pi;
/// use std::f64::consts::PI;
///
/// assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_to_pi(-3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn wrap_to_pi(angle: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut a = angle % two_pi;
    if a <= -PI {
        a += two_pi;
    } else if a > PI {
        a -= two_pi;
    }
    a
}

/// Shortest signed angular distance from `from` to `to`, in `(-π, π]`.
pub fn shortest_delta(from: f64, to: f64) -> f64 {
    wrap_to_pi(to - from)
}

/// Clamps `value` into `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[inline]
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp: lo ({lo}) > hi ({hi})");
    value.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_radian_roundtrip() {
        for d in [-720.0, -90.0, 0.0, 45.0, 180.0, 359.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-10);
        }
        assert!((deg_to_rad(180.0) - PI).abs() < 1e-15);
    }

    #[test]
    fn wrap_stays_in_range() {
        for k in -20..20 {
            for frac in [0.0, 0.1, 0.5, 0.99] {
                let a = k as f64 * PI + frac;
                let w = wrap_to_pi(a);
                assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "{a} wrapped to {w}");
                // Wrapped angle is congruent mod 2π.
                assert!(((a - w) / (2.0 * PI)).round() * 2.0 * PI - (a - w) < 1e-9);
            }
        }
    }

    #[test]
    fn wrap_fixed_points() {
        assert_eq!(wrap_to_pi(0.0), 0.0);
        assert!((wrap_to_pi(PI) - PI).abs() < 1e-12);
        assert!((wrap_to_pi(-PI) - PI).abs() < 1e-12); // -π maps to +π
        assert!((wrap_to_pi(2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn shortest_delta_takes_short_way() {
        let d = shortest_delta(deg_to_rad(170.0), deg_to_rad(-170.0));
        assert!((d - deg_to_rad(20.0)).abs() < 1e-12);
        let d = shortest_delta(deg_to_rad(-170.0), deg_to_rad(170.0));
        assert!((d + deg_to_rad(20.0)).abs() < 1e-12);
    }

    #[test]
    fn clamp_basics() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_invalid_range_panics() {
        clamp(0.0, 1.0, -1.0);
    }
}
