//! Three-dimensional vectors.
//!
//! [`Vec3`] is the workhorse geometric type of the kinematic chain: desired
//! and actual end-effector positions (`pos_d`, `pos` in Fig. 2 of the paper)
//! are `Vec3` values in meters, expressed in the robot base frame.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3-D vector of `f64` components.
///
/// # Example
///
/// ```
/// use raven_math::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a.cross(Vec3::X).dot(a), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The unit X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// The unit Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// The unit Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Returns the unit vector in the same direction, or `None` when the norm
    /// is below `1e-12` (direction undefined).
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as a fixed-size array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    /// # Panics
    ///
    /// Panics if `i > 2`.
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(Vec3::ZERO.norm(), 0.0);
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.5, 4.0, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!((a * 2.0) / 2.0, a);
        assert_eq!(-(-a), a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn cross_product_is_orthogonal_and_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(3.0, 0.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_matches_fields() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!((v[0], v[1], v[2]), (7.0, 8.0, 9.0));
        v[1] = -8.0;
        assert_eq!(v.y, -8.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn distance_and_abs() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(1.0, 1.0, 2.0);
        assert_eq!(a.distance(b), 1.0);
        assert_eq!(Vec3::new(-1.0, 2.0, -3.0).abs(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(Vec3::new(-1.0, 2.0, -3.0).max_component(), 2.0);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::X.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
