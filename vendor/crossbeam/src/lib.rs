//! Offline, API-compatible subset of `crossbeam` for this workspace.
//!
//! Exposes `crossbeam::thread::scope` with crossbeam's signature (the
//! closure receives a `&Scope` and `scope` returns a `Result`), backed by
//! `std::thread::scope` — available since Rust 1.63, so no unsafe lifetime
//! juggling is needed. Also provides a minimal `channel` module
//! (`unbounded`) backed by `std::sync::mpsc` for pipeline-style fan-in.

/// Scoped thread spawning.
pub mod thread {
    use std::marker::PhantomData;

    /// A scope handle passed to the `scope` closure; spawned threads may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Mirrors crossbeam's signature, where the
        /// closure itself receives the scope handle (unused by most callers).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope, _marker: PhantomData };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned. All
    /// threads are joined before `scope` returns. Per crossbeam's API the
    /// result is `Err` if any *unjoined* spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s, _marker: PhantomData };
                f(&scope)
            })
        }))
    }
}

/// Multi-producer channels (subset backed by `std::sync::mpsc`).
pub mod channel {
    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if all receivers disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty,
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates over messages until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Error returned when sending to a channel with no receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for non-blocking receive.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        super::thread::scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
