//! Offline, API-compatible subset of `parking_lot` for this workspace.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-agnostic
//! semantics: like the real crate, locks are **not poisoned** when a
//! holder panics. The campaign executor relies on this — a panicking run
//! is caught and recorded, and other runs keep locking shared state.

use std::sync::PoisonError;

/// A mutual-exclusion lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // Real parking_lot semantics: still lockable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
