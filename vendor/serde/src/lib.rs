//! Offline, API-compatible subset of `serde` for this workspace.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This stub keeps the same surface the workspace uses — the
//! `Serialize`/`Deserialize` traits plus `#[derive(Serialize, Deserialize)]`
//! — over a single self-describing data model ([`Content`]) that
//! `serde_json` renders to and parses from JSON with the same conventions
//! as the real crates (structs → objects, unit enum variants → strings,
//! data-carrying variants → externally tagged objects, newtype structs →
//! transparent).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value every `Serialize` type lowers to and every
/// `Deserialize` type is rebuilt from. Mirrors the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` (also the encoding of `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup by key; `None` for non-maps and absent keys.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself to [`Content`].
pub trait Serialize {
    /// Lowers `self` to the data model.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing with a description of the mismatch.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// `serde::ser` compatibility alias module.
pub mod ser {
    pub use super::Serialize;
}

/// `serde::de` compatibility alias module.
pub mod de {
    pub use super::{DeError, Deserialize};
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    _ => return Err(DeError::msg(format!(
                        "expected unsigned integer, got {}", c.kind()))),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::msg("integer out of range"))?,
                    _ => return Err(DeError::msg(format!(
                        "expected integer, got {}", c.kind()))),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::msg(format!("expected bool, got {}", c.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // serde_json encodes non-finite floats as null.
            Content::Null => Ok(f64::NAN),
            _ => Err(DeError::msg(format!("expected float, got {}", c.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg(format!("expected string, got {}", c.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::msg(format!("expected sequence, got {}", c.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(c)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::msg(format!("expected array of length {N}, got {n}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            _ => Err(DeError::msg(format!("expected map, got {}", c.kind()))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            _ => Err(DeError::msg(format!("expected map, got {}", c.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::msg(format!(
                                "expected tuple of length {expected}, got {}", items.len())));
                        }
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::msg(format!("expected sequence, got {}", c.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::msg(format!("expected null, got {}", c.kind()))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
