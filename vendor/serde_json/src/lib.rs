//! Offline, API-compatible subset of `serde_json` for this workspace.
//!
//! Renders the serde stub's [`Content`] data model to JSON text and parses
//! JSON text back, following serde_json's conventions: 2-space pretty
//! indentation, non-finite floats as `null`, floats always printed with a
//! decimal point or exponent so they re-parse as floats.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON value (the serde stub's data model, re-exported).
pub type Value = Content;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns a parse or shape-mismatch error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns a parse error on malformed input.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    from_str::<Value>(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Content, indent: Option<&str>, depth: usize) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => out.push_str(&format_f64(*x)),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |out, i, ind, d| {
                write_value(out, &items[i], ind, d);
            })
        }
        Content::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i, ind, d| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, ind, d);
            });
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<&str>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        write_item(out, i, indent, depth + 1);
    }
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(close);
}

/// Formats a float so it always re-parses as a float (serde_json prints
/// `1.0`, not `1`); non-finite values become `null` as in serde_json.
fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar, validating only
                    // its own bytes — validating the whole remaining input
                    // per character made parsing quadratic.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + width)
                        .ok_or_else(|| Error::new("invalid UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos += width;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_seq(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax. Supports the literal subset
/// this workspace uses: objects with literal keys, arrays, expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::json!($value)) ),* ])
    };
    ($other:expr) => {
        ::serde::Serialize::to_content(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("1").unwrap(), 1);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"x\\n\"").unwrap(), "x\n");
    }

    #[test]
    fn roundtrip_compound() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!({"a": [1, 2], "b": {"c": true}});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
        assert!(s.contains("\n  \"a\""));
    }
}
