//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stub.
//!
//! The build environment has no access to crates.io, so `syn`/`quote` are
//! unavailable; the input item is parsed directly from the raw
//! `proc_macro::TokenStream` and the generated impl is emitted as source
//! text. Supported shapes — everything this workspace derives on:
//!
//! * structs with named fields → JSON objects;
//! * newtype structs (`struct T(U)`) → transparent (the inner value);
//! * tuple structs → sequences;
//! * unit structs → `null`;
//! * enums: unit variants → `"Name"`; struct/newtype/tuple variants →
//!   externally tagged `{"Name": …}` (serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported —
//! the derive panics loudly rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Splits a token slice on top-level commas (commas at angle-bracket depth
/// zero; bracketed/braced/parenthesized groups are single tokens already).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(...)`) from a token slice.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // '#' followed by a bracket group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens)
        .iter()
        .filter_map(|field| {
            let field = strip_attrs_and_vis(field);
            match field.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens).iter().filter(|f| !f.is_empty()).count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => continue,
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let rest: Vec<TokenTree> = it.cloned().collect();
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stub): generic types are not supported; write a manual impl for `{name}`");
    }
    if kind == "struct" {
        let fields = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_arity(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            None => Fields::Unit,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        };
        Item::Struct { name, fields }
    } else {
        let body = match rest.first() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        };
        let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
        let variants = split_top_level_commas(&body_tokens)
            .iter()
            .filter(|v| !v.is_empty())
            .map(|v| {
                let v = strip_attrs_and_vis(v);
                let name = match v.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, got {other:?}"),
                };
                let fields = match v.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple_arity(g))
                    }
                    _ => Fields::Unit,
                };
                Variant { name, fields }
            })
            .collect();
        Item::Enum { name, variants }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
                }
                Fields::Unit => "::serde::Content::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Named(fields) => {
                            let pat = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pat} }} => ::serde::Content::Map(vec![\
                                     (\"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![\
                                 (\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let entries: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![\
                                     (\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                binders.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(c.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::DeError::msg(\
                                         \"missing field `{f}` in {name}\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "if !matches!(c, ::serde::Content::Map(_)) {{\n\
                             return Err(::serde::DeError::msg(format!(\
                                 \"expected map for {name}, got {{}}\", c.kind())));\n\
                         }}\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = match c {{\n\
                             ::serde::Content::Seq(items) if items.len() == {n} => items,\n\
                             _ => return Err(::serde::DeError::msg(\
                                 \"expected sequence of length {n} for {name}\")),\n\
                         }};\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = c; Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(inner.get(\"{f}\")\
                                             .ok_or_else(|| ::serde::DeError::msg(\
                                                 \"missing field `{f}` in {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_content(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let items = match inner {{\n\
                                         ::serde::Content::Seq(items) if items.len() == {n} => items,\n\
                                         _ => return Err(::serde::DeError::msg(\
                                             \"expected sequence for {name}::{vn}\")),\n\
                                     }};\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(c: &::serde::Content) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match c {{\n\
                             ::serde::Content::Str(tag) => {{\n\
                                 match tag.as_str() {{\n\
                                     {units}\n\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                             _ => {{}}\n\
                         }}\n\
                         Err(::serde::DeError::msg(format!(\
                             \"unknown {name} variant in {{}}\", c.kind())))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    src.parse().expect("serde_derive: generated Deserialize impl must parse")
}
