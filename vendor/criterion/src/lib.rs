//! Offline, API-compatible subset of `criterion` for this workspace.
//!
//! Implements the benchmark harness surface `benches/micro_kernels.rs`
//! uses: `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain median-of-samples
//! wall-clock measurement printed to stdout — no statistical regression
//! analysis or HTML reports, but stable enough to compare kernels.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported for convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, self.warm_up, self.measure, f);
        self
    }

    /// Starts a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, prefix: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.warm_up,
            self.criterion.measure,
            f,
        );
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Ends the group (explicit, to mirror criterion's API).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: find an iteration count whose batch takes ~1/sample_size of
    // the measurement budget, so total runtime stays bounded.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / u32::try_from(b.iters).unwrap_or(1);
        b.iters = (b.iters * 2).min(1 << 30);
    }
    let budget_per_sample = measure / u32::try_from(sample_size).unwrap_or(1);
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];
    println!("{name:<40} time: [{} {} {}]", format_ns(lo), format_ns(median), format_ns(hi));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_quickly_scaled_down() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(calls > 0);
    }
}
