//! Offline, API-compatible subset of `rand` 0.8 for this workspace.
//!
//! Provides `rngs::SmallRng` (xoshiro256++, the same algorithm rand 0.8
//! uses for `SmallRng` on 64-bit targets), `SeedableRng::seed_from_u64`
//! (SplitMix64 expansion, as upstream), and the `Rng` extension trait with
//! the `gen`/`gen_range`/`gen_bool` methods this workspace calls.
//!
//! Determinism is the point: the stream for a given seed is fixed by this
//! crate alone and never changes underneath the experiments.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for real rand; here `[u8; 32]`).
    type Seed;

    /// Constructs the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64
    /// exactly as upstream rand does.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, bound)` via Lemire-style rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = mul_u64_wide(v, bound);
        if lo <= zone {
            return hi;
        }
    }
}

fn mul_u64_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 stepper used for seed expansion (matches upstream rand).
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64_next, RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++ (rand 0.8's `SmallRng` on 64-bit).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // All-zero state is a fixed point for xoshiro; nudge it.
                s = [0x9e37_79b9_7f4a_7c15, 0, 0, 0];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

/// `rand::prelude` compatibility.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
