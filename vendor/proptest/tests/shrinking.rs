//! Shrinking invariants for the vendored proptest: every shrink step
//! stays inside the strategy's domain, shrinking terminates within
//! `max_shrink_iters`, and the canonical seeded failure minimizes to a
//! single-element vector that replays from the reported seed.

use proptest::prelude::*;
use proptest::test_runner::{run_reporting, Failure};
use proptest::ValueTree;

/// Drives a deliberately failing property and returns the failure
/// report plus every input the runner actually tested (generation and
/// shrink candidates alike), for domain-invariant assertions.
fn drive<S, P>(
    name: &str,
    cfg: &ProptestConfig,
    strat: &S,
    mut fails: P,
) -> (Failure<S::Value>, Vec<S::Value>)
where
    S: Strategy,
    S::Value: Clone,
    P: FnMut(&S::Value) -> bool,
{
    let mut seen: Vec<S::Value> = Vec::new();
    let failure = run_reporting(name, cfg, strat, |v| {
        seen.push(v.clone());
        if fails(&v) {
            Err(TestCaseError::fail("deliberate failure"))
        } else {
            Ok(())
        }
    })
    .expect_err("property was constructed to fail");
    (failure, seen)
}

#[test]
fn canonical_vec_failure_minimizes_to_single_element() {
    let cfg = ProptestConfig::with_cases(64);
    let strat = (prop::collection::vec(any::<u32>(), 0..100),);
    let fails = |(v,): &(Vec<u32>,)| v.iter().any(|&x| x > 1000);

    let (failure, seen) = drive("canonical_vec", &cfg, &strat, fails);
    let (min,) = failure.minimized.clone();
    assert_eq!(min.len(), 1, "minimized to a single element: {min:?}");
    assert_eq!(min[0], 1001, "binary search converges to the smallest failing element");
    let (orig,) = failure.original.clone();
    assert!(orig.iter().any(|&x| x > 1000), "original input must fail too");
    assert!(failure.shrink_iters <= cfg.max_shrink_iters);
    // Every candidate the runner tested respects the length bound.
    assert!(seen.iter().all(|(v,)| v.len() < 100));

    // Replaying the reported seed reproduces the identical failure.
    let replay_cfg = ProptestConfig::with_cases(64).with_seed(failure.seed);
    let (replayed, _) = drive("some_other_name", &replay_cfg, &strat, fails);
    assert_eq!(replayed.minimized, failure.minimized);
    assert_eq!(replayed.original, failure.original);
    assert_eq!(replayed.case, failure.case);
}

#[test]
fn int_range_candidates_stay_in_bounds_and_reach_the_low_end() {
    let cfg = ProptestConfig::default();
    let strat = (50i32..150,);
    let (failure, seen) = drive("int_bounds", &cfg, &strat, |_| true);
    assert!(seen.iter().all(|(x,)| (50..150).contains(x)), "{seen:?}");
    assert_eq!(failure.minimized.0, 50, "an always-failing property minimizes to the range start");
}

#[test]
fn inclusive_range_and_negative_targets_shrink_to_their_start() {
    let cfg = ProptestConfig::default();
    let (failure, seen) = drive("incl_bounds", &cfg, &(-20i64..=20,), |_| true);
    assert!(seen.iter().all(|(x,)| (-20..=20).contains(x)));
    assert_eq!(failure.minimized.0, -20);
}

#[test]
fn float_range_candidates_stay_in_bounds_and_reach_the_low_end() {
    let cfg = ProptestConfig::default();
    let strat = (1.5f64..10.0,);
    let (failure, seen) = drive("float_bounds", &cfg, &strat, |_| true);
    assert!(seen.iter().all(|(x,)| (1.5..10.0).contains(x)), "{seen:?}");
    assert_eq!(failure.minimized.0, 1.5);
    assert!(failure.shrink_iters <= cfg.max_shrink_iters);
}

#[test]
fn vec_length_never_dips_below_the_strategy_minimum() {
    let cfg = ProptestConfig::default();
    let strat = (prop::collection::vec(0u8..10, 3..8),);
    let (failure, seen) = drive("vec_min_len", &cfg, &strat, |_| true);
    assert!(seen.iter().all(|(v,)| (3..8).contains(&v.len())), "{seen:?}");
    let (min,) = failure.minimized;
    assert_eq!(min.len(), 3, "removal pass stops at the minimum length");
    assert!(min.iter().all(|&x| x == 0), "element pass reaches each range start: {min:?}");
}

#[test]
fn filter_predicate_holds_on_every_shrink_candidate() {
    let cfg = ProptestConfig::default();
    let strat = ((0i32..1000).prop_filter("must be even", |x| x % 2 == 0),);
    let (failure, seen) = drive("filter_domain", &cfg, &strat, |(x,)| *x >= 100);
    assert!(seen.iter().all(|(x,)| x % 2 == 0), "{seen:?}");
    // A dense filter interacts with the bisection (a rejected odd
    // midpoint prunes the evens below it), so the result is a local
    // minimum: even, still failing, and no worse than the original.
    let min = failure.minimized.0;
    assert_eq!(min % 2, 0);
    assert!(min >= 100 && min <= failure.original.0, "{failure:?}");
}

#[test]
fn sparse_filter_still_reaches_the_exact_minimum() {
    // A pinhole filter can only prune below the true minimum, so the
    // bisection converges exactly.
    let cfg = ProptestConfig::default();
    let strat = ((0i32..1000).prop_filter("not 77", |x| *x != 77),);
    let (failure, seen) = drive("filter_pinhole", &cfg, &strat, |(x,)| *x >= 100);
    assert!(seen.iter().all(|(x,)| *x != 77));
    assert_eq!(failure.minimized.0, 100, "smallest failing value outside the pinhole");
}

#[test]
fn union_shrinks_toward_earlier_alternatives() {
    let cfg = ProptestConfig::default();
    let strat = (prop_oneof![Just(3u8), Just(2), Just(1)],);
    let (failure, _) = drive("union_order", &cfg, &strat, |_| true);
    assert_eq!(failure.minimized.0, 3, "the first prop_oneof! arm is the simplest");
}

#[test]
fn tuples_and_arrays_shrink_every_component() {
    let cfg = ProptestConfig::default();
    let strat = (10u8..20, prop::array::uniform3(5i16..9), any::<bool>());
    let (failure, seen) = drive("tuple_components", &cfg, &strat, |_| true);
    assert!(seen
        .iter()
        .all(|(a, arr, _)| (10..20).contains(a) && arr.iter().all(|x| (5..9).contains(x))));
    let (a, arr, b) = failure.minimized;
    assert_eq!((a, arr, b), (10, [5, 5, 5], false));
}

#[test]
fn shrinking_respects_a_tight_iteration_budget() {
    let cfg = ProptestConfig::default().with_max_shrink_iters(5);
    let strat = (prop::collection::vec(any::<u32>(), 0..100),);
    let (failure, _) = drive("tight_budget", &cfg, &strat, |(v,)| v.iter().any(|&x| x > 1000));
    assert!(failure.shrink_iters <= 5, "shrink loop exceeded its budget");
    let (min,) = failure.minimized;
    assert!(min.iter().any(|&x| x > 1000), "reported input must still fail");
}

#[test]
fn zero_budget_reports_the_original_failure() {
    let cfg = ProptestConfig::default().with_max_shrink_iters(0);
    let strat = (0u64..1000,);
    let (failure, _) = drive("zero_budget", &cfg, &strat, |_| true);
    assert_eq!(failure.shrink_iters, 0);
    assert_eq!(failure.minimized, failure.original);
}

#[test]
fn complicate_restores_the_pre_simplify_value_exactly() {
    // Unit-level check of the restore-and-narrow contract the runner
    // and `Filter` rely on.
    let mut tree = proptest::IntTree::new(100u32, 0);
    assert_eq!(tree.current(), 100);
    assert!(tree.simplify());
    assert_eq!(tree.current(), 50);
    assert!(tree.complicate(), "an undone simplification restores the previous value");
    assert_eq!(tree.current(), 100);
    assert!(tree.simplify());
    assert_eq!(tree.current(), 75, "the rejected half of the interval is not retried");
    assert!(!tree.complicate() || tree.current() != 50);
}

#[test]
fn map_shrinks_through_the_mapping() {
    let cfg = ProptestConfig::default();
    let strat = ((0u32..500).prop_map(|x| x * 2),);
    let (failure, seen) = drive("map_domain", &cfg, &strat, |(x,)| *x >= 100);
    assert!(seen.iter().all(|(x,)| x % 2 == 0));
    assert_eq!(failure.minimized.0, 100, "smallest doubled value still failing");
}

#[test]
fn zero_target_floats_collapse_without_exhausting_the_budget() {
    // Regression: a float component whose target is 0.0 used to halve
    // until the ulp underflowed (~1070 steps), exhausting the budget on
    // one component. The lo-probe collapses irrelevant components in a
    // single step each.
    let cfg = ProptestConfig::with_cases(64);
    let strat = (prop::array::uniform3(0.0f64..1e5), 0.0f64..0.01);
    let (failure, _) = drive("zero_target_floats", &cfg, &strat, |(_, step)| *step > 0.005);
    let (arr, step) = failure.minimized;
    assert_eq!(arr, [0.0; 3], "irrelevant components collapse to the target: {arr:?}");
    assert!(step > 0.005 && step < 0.005 + 1e-6, "threshold pinned: {step}");
    assert!(failure.shrink_iters < 200, "budget stays small: {}", failure.shrink_iters);
}

// A deliberately failing property, kept `#[ignore]`d as a live demo of
// the failure report. Run it to see the original input, the minimized
// counterexample, and the replay seed in the panic message:
//
//     cargo test -p proptest -- --ignored demo_minimized
proptest! {
    #[test]
    #[ignore = "deliberately failing: demonstrates the minimized failure report"]
    fn demo_minimized_failure_report(v in prop::collection::vec(any::<u32>(), 0..100)) {
        prop_assert!(v.iter().all(|&x| x <= 1000), "an element exceeded 1000: {:?}", v);
    }
}
