//! Strategies: generators that produce [`ValueTree`]s.
//!
//! `Strategy::new_tree` draws a value *and* captures the state needed to
//! shrink it. The hard constraint honoured throughout this module is
//! that building a tree consumes the RNG stream exactly as the old
//! non-shrinking `sample` did — shrinking state is derived from the
//! drawn value (or, for `Union`, from a zero-cost RNG fork) and never
//! costs extra draws, so passing test runs are byte-identical to the
//! pre-shrinking runner.

use std::rc::Rc;

use crate::runner::TestRng;
use crate::tree::{BoolTree, FloatTree, IntTree, NoShrink, ValueTree};

/// A generator of values of type `Value`, with integrated shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// The value-tree type driving shrinking for this strategy.
    type Tree: ValueTree<Value = Self::Value>;

    /// Draws one value together with its shrink state.
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree;

    /// Draws one value, discarding the shrink state (compatibility
    /// shim for the pre-shrinking API; consumes the same entropy).
    fn sample(&self, rng: &mut TestRng) -> Self::Value
    where
        Self: Sized,
    {
        self.new_tree(rng).current()
    }

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Keeps only values for which `f` returns `true`, resampling
    /// others; the predicate is re-checked on every shrink step.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f: Rc::new(f) }
    }

    /// Type-erases the strategy (and its trees).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Tree: 'static,
    {
        BoxedStrategy(Box::new(Boxer(self)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V, Tree = Box<dyn ValueTree<Value = V>>>>);

/// Adapter giving any strategy a boxed tree type.
struct Boxer<S>(S);

impl<S> Strategy for Boxer<S>
where
    S: Strategy,
    S::Tree: 'static,
{
    type Value = S::Value;
    type Tree = Box<dyn ValueTree<Value = S::Value>>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        Box::new(self.0.new_tree(rng))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    type Tree = Box<dyn ValueTree<Value = V>>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        self.0.new_tree(rng)
    }
}

/// Strategy that always yields a clone of one value (never shrinks).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Tree = NoShrink<T>;

    fn new_tree(&self, _rng: &mut TestRng) -> NoShrink<T> {
        NoShrink(self.0.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The value-tree type for unconstrained draws.
    type Tree: ValueTree<Value = Self>;

    /// Draws an unconstrained value with its shrink state.
    fn arbitrary_tree(rng: &mut TestRng) -> Self::Tree;

    /// Draws an unconstrained value (same entropy as `arbitrary_tree`).
    fn arbitrary(rng: &mut TestRng) -> Self {
        Self::arbitrary_tree(rng).current()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Tree = IntTree<$t>;

            fn arbitrary_tree(rng: &mut TestRng) -> IntTree<$t> {
                IntTree::new(rng.next_u64() as $t, 0)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Tree = BoolTree;

    fn arbitrary_tree(rng: &mut TestRng) -> BoolTree {
        BoolTree::new(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for f64 {
    type Tree = FloatTree<f64>;

    fn arbitrary_tree(rng: &mut TestRng) -> FloatTree<f64> {
        // Finite, wide-range values; real proptest also generates
        // specials, but the suites here only rely on "some spread of
        // floats". Shrinks toward zero.
        let mag = rng.in_range(-300.0..300.0);
        let sig = rng.unit_f64() * 2.0 - 1.0;
        FloatTree::new(sig * 10f64.powf(mag / 10.0), 0.0)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    type Tree = T::Tree;

    fn new_tree(&self, rng: &mut TestRng) -> T::Tree {
        T::arbitrary_tree(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

/// Tree for [`Map`]: shrinks the inner tree, mapping on read.
pub struct MapTree<T, F> {
    inner: T,
    f: Rc<F>,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        MapTree { inner: self.inner.new_tree(rng), f: Rc::clone(&self.f) }
    }
}

impl<T: ValueTree, O, F: Fn(T::Value) -> O> ValueTree for MapTree<T, F> {
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

/// [`Strategy::prop_filter`] adapter (local rejection sampling).
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: Rc<F>,
}

/// Tree for [`Filter`]: only commits simplifications whose value still
/// satisfies the predicate; unacceptable candidates are undone via
/// `complicate`, so `current()` always passes the predicate.
pub struct FilterTree<T, F> {
    inner: T,
    f: Rc<F>,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    type Tree = FilterTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        for _ in 0..10_000 {
            let tree = self.inner.new_tree(rng);
            if (self.f)(&tree.current()) {
                return FilterTree { inner: tree, f: Rc::clone(&self.f) };
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive samples", self.reason);
    }
}

impl<T: ValueTree, F: Fn(&T::Value) -> bool> ValueTree for FilterTree<T, F> {
    type Value = T::Value;

    fn current(&self) -> T::Value {
        self.inner.current()
    }

    fn simplify(&mut self) -> bool {
        // Each rejected candidate is undone immediately, which also
        // narrows the inner search space — the loop terminates because
        // the inner tree's candidate space strictly shrinks (bounded
        // defensively for exotic inner trees).
        for _ in 0..10_000 {
            if !self.inner.simplify() {
                return false;
            }
            if (self.f)(&self.inner.current()) {
                return true;
            }
            if !self.inner.complicate() {
                return false;
            }
        }
        false
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            type Tree = IntTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                IntTree::new(rng.in_range(self.clone()), self.start)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            type Tree = IntTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> IntTree<$t> {
                IntTree::new(rng.in_range(self.clone()), *self.start())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            type Tree = FloatTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> FloatTree<$t> {
                FloatTree::new(rng.in_range(self.clone()), self.start)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            type Tree = FloatTree<$t>;

            fn new_tree(&self, rng: &mut TestRng) -> FloatTree<$t> {
                FloatTree::new(rng.in_range(self.clone()), *self.start())
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($tree:ident: ($($s:ident / $idx:tt),+))*) => {$(
        /// Tree for a tuple strategy: shrinks components left to right.
        pub struct $tree<$($s),+> {
            trees: ($($s,)+),
            cursor: usize,
            last: Option<usize>,
        }

        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Tree = $tree<$($s::Tree),+>;

            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                $tree {
                    trees: ($(self.$idx.new_tree(rng),)+),
                    cursor: 0,
                    last: None,
                }
            }
        }

        impl<$($s: ValueTree),+> ValueTree for $tree<$($s),+> {
            type Value = ($($s::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                loop {
                    match self.cursor {
                        $(
                            $idx => {
                                if self.trees.$idx.simplify() {
                                    self.last = Some($idx);
                                    return true;
                                }
                                self.cursor += 1;
                            }
                        )+
                        _ => return false,
                    }
                }
            }

            fn complicate(&mut self) -> bool {
                match self.last.take() {
                    $(Some($idx) => self.trees.$idx.complicate(),)+
                    _ => false,
                }
            }
        }
    )*};
}

impl_tuple_strategy! {
    Tuple1Tree: (A/0)
    Tuple2Tree: (A/0, B/1)
    Tuple3Tree: (A/0, B/1, C/2)
    Tuple4Tree: (A/0, B/1, C/2, D/3)
    Tuple5Tree: (A/0, B/1, C/2, D/3, E/4)
    Tuple6Tree: (A/0, B/1, C/2, D/3, E/4, F/5)
    Tuple7Tree: (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    Tuple8Tree: (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Weighted-uniform choice among boxed alternatives (`prop_oneof!`
/// support). Shrinks toward earlier alternatives, then within the
/// chosen alternative's own tree.
pub struct Union<V> {
    alternatives: Rc<Vec<BoxedStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union { alternatives: Rc::new(alternatives) }
    }
}

/// Tree for [`Union`]. Earlier alternatives are built lazily from a
/// forked RNG so that shrinking — which only runs after a failure is
/// already in hand — never consumes the main generation stream.
pub struct UnionTree<V> {
    alts: Rc<Vec<BoxedStrategy<V>>>,
    idx: usize,
    tree: Box<dyn ValueTree<Value = V>>,
    fork: TestRng,
    prev: Option<(usize, Box<dyn ValueTree<Value = V>>)>,
    alts_exhausted: bool,
    last_was_switch: bool,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    type Tree = UnionTree<V>;

    fn new_tree(&self, rng: &mut TestRng) -> UnionTree<V> {
        let idx = rng.in_range(0..self.alternatives.len());
        let tree = self.alternatives[idx].new_tree(rng);
        UnionTree {
            alts: Rc::clone(&self.alternatives),
            idx,
            tree,
            fork: rng.fork(),
            prev: None,
            alts_exhausted: false,
            last_was_switch: false,
        }
    }
}

impl<V> ValueTree for UnionTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.tree.current()
    }

    fn simplify(&mut self) -> bool {
        if !self.alts_exhausted && self.idx > 0 {
            let mut rng = self.fork.fork();
            let candidate = self.alts[self.idx - 1].new_tree(&mut rng);
            let old = std::mem::replace(&mut self.tree, candidate);
            self.prev = Some((self.idx, old));
            self.idx -= 1;
            self.last_was_switch = true;
            return true;
        }
        if self.tree.simplify() {
            self.last_was_switch = false;
            return true;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        if self.last_was_switch {
            self.last_was_switch = false;
            match self.prev.take() {
                Some((idx, tree)) => {
                    self.idx = idx;
                    self.tree = tree;
                    self.alts_exhausted = true;
                    true
                }
                None => false,
            }
        } else {
            self.tree.complicate()
        }
    }
}

/// `prop::collection`: containers of generated elements.
pub mod collection {
    use super::{Strategy, TestRng, ValueTree};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Tree = VecTree<S::Tree>;

        fn new_tree(&self, rng: &mut TestRng) -> VecTree<S::Tree> {
            let n =
                if self.len.is_empty() { self.len.start } else { rng.in_range(self.len.clone()) };
            let elems: Vec<S::Tree> = (0..n).map(|_| self.element.new_tree(rng)).collect();
            VecTree {
                included: vec![true; elems.len()],
                elems,
                min_len: self.len.start,
                remove_cursor: 0,
                elem_cursor: 0,
                last: None,
            }
        }
    }

    /// What the last `simplify` on a [`VecTree`] did, for undo.
    enum VecOp {
        Removed(usize),
        Shrunk(usize),
    }

    /// Tree for `vec`: first tries removing elements one at a time
    /// (never below the strategy's minimum length), then shrinks the
    /// surviving elements in place.
    pub struct VecTree<T> {
        elems: Vec<T>,
        included: Vec<bool>,
        min_len: usize,
        remove_cursor: usize,
        elem_cursor: usize,
        last: Option<VecOp>,
    }

    impl<T: ValueTree> VecTree<T> {
        fn included_count(&self) -> usize {
            self.included.iter().filter(|i| **i).count()
        }
    }

    impl<T: ValueTree> ValueTree for VecTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Vec<T::Value> {
            self.elems
                .iter()
                .zip(&self.included)
                .filter(|(_, inc)| **inc)
                .map(|(t, _)| t.current())
                .collect()
        }

        fn simplify(&mut self) -> bool {
            while self.remove_cursor < self.elems.len() {
                if self.included[self.remove_cursor] && self.included_count() > self.min_len {
                    self.included[self.remove_cursor] = false;
                    self.last = Some(VecOp::Removed(self.remove_cursor));
                    return true;
                }
                self.remove_cursor += 1;
            }
            while self.elem_cursor < self.elems.len() {
                if self.included[self.elem_cursor] && self.elems[self.elem_cursor].simplify() {
                    self.last = Some(VecOp::Shrunk(self.elem_cursor));
                    return true;
                }
                self.elem_cursor += 1;
            }
            false
        }

        fn complicate(&mut self) -> bool {
            match self.last.take() {
                Some(VecOp::Removed(idx)) => {
                    self.included[idx] = true;
                    self.remove_cursor = idx + 1;
                    true
                }
                Some(VecOp::Shrunk(idx)) => self.elems[idx].complicate(),
                None => false,
            }
        }
    }
}

/// `prop::array`: fixed-size arrays of generated elements.
pub mod array {
    use super::{Strategy, TestRng, ValueTree};

    /// Strategy for `[T; N]` generating each element independently.
    pub struct UniformArray<S, const N: usize>(S);

    /// Tree for [`UniformArray`]: shrinks elements left to right.
    pub struct ArrayTree<T, const N: usize> {
        trees: [T; N],
        cursor: usize,
        last: Option<usize>,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        type Tree = ArrayTree<S::Tree, N>;

        fn new_tree(&self, rng: &mut TestRng) -> ArrayTree<S::Tree, N> {
            ArrayTree {
                trees: std::array::from_fn(|_| self.0.new_tree(rng)),
                cursor: 0,
                last: None,
            }
        }
    }

    impl<T: ValueTree, const N: usize> ValueTree for ArrayTree<T, N> {
        type Value = [T::Value; N];

        fn current(&self) -> [T::Value; N] {
            std::array::from_fn(|i| self.trees[i].current())
        }

        fn simplify(&mut self) -> bool {
            while self.cursor < N {
                if self.trees[self.cursor].simplify() {
                    self.last = Some(self.cursor);
                    return true;
                }
                self.cursor += 1;
            }
            false
        }

        fn complicate(&mut self) -> bool {
            match self.last.take() {
                Some(idx) => self.trees[idx].complicate(),
                None => false,
            }
        }
    }

    /// `[T; 3]` with independent elements.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray(element)
    }

    /// `[T; 4]` with independent elements.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }

    /// `[T; 8]` with independent elements.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray(element)
    }
}

/// `prop::sample`: choosing from concrete collections.
pub mod sample {
    use super::{IntTree, Strategy, TestRng, ValueTree};
    use std::rc::Rc;

    /// Strategy choosing uniformly from a fixed list; shrinks toward
    /// earlier options.
    pub struct Select<T: Clone>(Rc<Vec<T>>);

    /// Uniform choice from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select needs options");
        Select(Rc::new(options))
    }

    /// Tree for [`Select`]: binary-searches the option index toward 0.
    pub struct SelectTree<T: Clone> {
        options: Rc<Vec<T>>,
        idx: IntTree<usize>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        type Tree = SelectTree<T>;

        fn new_tree(&self, rng: &mut TestRng) -> SelectTree<T> {
            let idx = rng.in_range(0..self.0.len());
            SelectTree { options: Rc::clone(&self.0), idx: IntTree::new(idx, 0) }
        }
    }

    impl<T: Clone> ValueTree for SelectTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.options[self.idx.current()].clone()
        }

        fn simplify(&mut self) -> bool {
            self.idx.simplify()
        }

        fn complicate(&mut self) -> bool {
            self.idx.complicate()
        }
    }
}
