//! Offline, API-compatible subset of `proptest` for this workspace.
//!
//! Implements the slice of proptest the test suites use: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_filter`, `any`, `Just`,
//! `prop_oneof!`, range strategies, `prop::collection::vec`,
//! `prop::array::uniform{3,4,8}`, `prop::sample::select`, and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! test name, case index, and the deterministic per-test seed, which is
//! enough to reproduce (seeds derive from the test name, so runs are
//! stable across invocations and machines).

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG handed to strategies while sampling.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform draw from an integer/float range (delegates to the rand stub).
    pub fn in_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!` — resample, don't count as a case.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner internals used by the `proptest!` macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` accepted cases pass, panicking on
    /// the first failure. Rejections (`prop_assume!`) are resampled with a
    /// global budget so a too-strict assumption is reported, not spun on.
    pub fn run(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let seed = seed_for(name);
        let mut rng = TestRng::from_seed(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let reject_budget = config.cases.saturating_mul(16).max(1024);
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "proptest `{name}`: too many rejected inputs \
                             ({rejected} rejects for {accepted} accepted cases; seed {seed:#x})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {accepted} (seed {seed:#x}): {msg}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns `true`, resampling others.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-range values; real proptest also generates specials,
        // but the suites here only rely on "some spread of floats".
        let mag = rng.in_range(-300.0..300.0);
        let sig = rng.unit_f64() * 2.0 - 1.0;
        sig * 10f64.powf(mag / 10.0)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_filter`] adapter (local rejection sampling).
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive samples", self.reason);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Weighted-uniform choice among boxed alternatives (`prop_oneof!` support).
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.in_range(0..self.alternatives.len());
        self.alternatives[idx].sample(rng)
    }
}

/// `prop::collection`: containers of sampled elements.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n =
                if self.len.is_empty() { self.len.start } else { rng.in_range(self.len.clone()) };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::array`: fixed-size arrays of sampled elements.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; N]` sampling each element independently.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// `[T; 3]` with independent elements.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray(element)
    }

    /// `[T; 4]` with independent elements.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }

    /// `[T; 8]` with independent elements.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray(element)
    }
}

/// `prop::sample`: choosing from concrete collections.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "prop::sample::select needs options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.in_range(0..self.0.len());
            self.0[idx].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in any::<u64>(), v in prop::collection::vec(0u8..9, 0..16)) {
///         prop_assert!(x == x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current inputs (resampled without counting as a case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let cfg = ProptestConfig::with_cases(8);
        let mut first: Vec<u64> = Vec::new();
        crate::test_runner::run("det", &cfg, |rng| {
            first.push(crate::Strategy::sample(&any::<u64>(), rng));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::test_runner::run("det", &cfg, |rng| {
            second.push(crate::Strategy::sample(&any::<u64>(), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_filter_work(
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
            arr in prop::array::uniform3(0.0f64..1.0),
            odd in (0i32..100).prop_filter("must be odd", |v| v % 2 == 1),
        ) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(arr.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assume!(odd != 1);
            prop_assert_eq!(odd % 2, 1);
            prop_assert_ne!(odd, 2);
        }
    }
}
