//! Offline, API-compatible subset of `proptest` for this workspace.
//!
//! Implements the slice of proptest the test suites use: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_filter`, `any`, `Just`,
//! `prop_oneof!`, range strategies, `prop::collection::vec`,
//! `prop::array::uniform{3,4,8}`, `prop::sample::select`, and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Like real proptest, strategies produce [`ValueTree`]s with
//! integrated shrinking: a failing case is minimized by a bounded
//! binary-search shrink loop (`ProptestConfig::max_shrink_iters`) and
//! reported together with the original input, the case index, and the
//! deterministic replay seed (seeds derive from the test name, so runs
//! are stable across invocations and machines; replay an explicit seed
//! with `ProptestConfig::with_seed`).
//!
//! Generation for passing cases consumes the vendored-rand stream
//! exactly as the pre-shrinking stub did — shrinking only manipulates
//! trees already in hand (plus RNG forks captured at build time), so
//! enabling it cannot move any byte-identical artifact.

mod macros;
mod runner;
mod strategy;
mod tree;

pub use runner::{Failure, ProptestConfig, TestCaseError, TestRng};
pub use strategy::{
    any, array, collection, sample, Any, Arbitrary, BoxedStrategy, Filter, Just, Map, Strategy,
    Union,
};
pub use tree::{BoolTree, FloatTree, IntTree, NoShrink, ValueTree};

/// Test-runner internals used by the `proptest!` macro expansion and by
/// fixture tests that inspect minimized counterexamples directly.
pub mod test_runner {
    pub use crate::runner::{
        run, run_reporting, seed_for, Failure, ProptestConfig, TestCaseError, TestRng,
    };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, ValueTree,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let cfg = ProptestConfig::with_cases(8);
        let mut first: Vec<u64> = Vec::new();
        crate::test_runner::run("det", &cfg, (any::<u64>(),), |(x,)| {
            first.push(x);
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::test_runner::run("det", &cfg, (any::<u64>(),), |(x,)| {
            second.push(x);
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    fn sample_matches_new_tree_current() {
        // The compatibility `sample` shim and `new_tree` must consume
        // the same entropy and yield the same value.
        let strat = crate::collection::vec(0u32..1000, 0..10);
        let mut a = crate::TestRng::from_seed(42);
        let mut b = crate::TestRng::from_seed(42);
        let sampled = strat.sample(&mut a);
        let tree = strat.new_tree(&mut b);
        assert_eq!(sampled, tree.current());
        // Both consumed identical draws: the streams stay in lockstep.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_filter_work(
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
            arr in prop::array::uniform3(0.0f64..1.0),
            odd in (0i32..100).prop_filter("must be odd", |v| v % 2 == 1),
        ) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(arr.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assume!(odd != 1);
            prop_assert_eq!(odd % 2, 1);
            prop_assert_ne!(odd, 2);
        }
    }
}
