//! The test runner: deterministic generation, and a bounded shrink
//! loop that kicks in only after a failure is already in hand.
//!
//! RNG discipline: the per-test stream (seeded from the test name, or
//! an explicit `ProptestConfig::with_seed`) is consumed *only* by tree
//! construction for generated cases — exactly the draws the
//! pre-shrinking `sample` runner made. Shrinking manipulates already
//! built trees (plus RNG forks captured at build time), so a test that
//! passes consumes a byte-identical stream with or without shrinking.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::strategy::Strategy;
use crate::tree::ValueTree;

/// Deterministic RNG handed to strategies while generating.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for an explicit seed (used by the runner and by replay).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform draw from an integer/float range (delegates to the rand stub).
    pub fn in_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }

    /// Snapshots the current stream state without consuming it. Used
    /// by shrinkers (`Union`) that may need entropy after a failure;
    /// forking draws nothing from the parent stream.
    pub fn fork(&self) -> TestRng {
        TestRng(self.0.clone())
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!` — resample, don't count as a case.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Upper bound on `simplify` steps while minimizing a failure.
    pub max_shrink_iters: u32,
    /// Explicit stream seed; `None` derives one from the test name.
    pub seed: Option<u64>,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }

    /// Replaces the name-derived seed (replay a reported failure).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Replaces the shrink-iteration bound.
    pub fn with_max_shrink_iters(mut self, max_shrink_iters: u32) -> Self {
        self.max_shrink_iters = max_shrink_iters;
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; 64 keeps the offline
        // suite quick while still exercising each property broadly.
        ProptestConfig { cases: 64, max_shrink_iters: 1024, seed: None }
    }
}

/// A minimized counterexample, as returned by [`run_reporting`].
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Index of the failing case (number of cases accepted before it).
    pub case: u32,
    /// Seed that reproduces the run (`ProptestConfig::with_seed`).
    pub seed: u64,
    /// The originally generated failing input.
    pub original: V,
    /// The input after shrinking (equals `original` if nothing simpler
    /// still failed).
    pub minimized: V,
    /// Number of `simplify` steps the shrink loop performed.
    pub shrink_iters: u32,
    /// The assertion message from the minimized failure.
    pub message: String,
}

/// FNV-1a over the test name: stable across runs and platforms.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `test` until `config.cases` accepted cases pass. On the first
/// failure, drives the bounded shrink loop and returns the minimized
/// counterexample instead of panicking (the panicking wrapper is
/// [`run`]). Rejections (`prop_assume!`) are resampled with a global
/// budget so a too-strict assumption is reported, not spun on.
pub fn run_reporting<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) -> Result<(), Failure<S::Value>> {
    let seed = config.seed.unwrap_or_else(|| seed_for(name));
    let mut rng = TestRng::from_seed(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.cases.saturating_mul(16).max(1024);
    while accepted < config.cases {
        let mut tree = strategy.new_tree(&mut rng);
        match test(tree.current()) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest `{name}`: too many rejected inputs \
                         ({rejected} rejects for {accepted} accepted cases; seed {seed:#x})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let original = tree.current();
                let mut message = msg;
                let mut iters = 0u32;
                while iters < config.max_shrink_iters {
                    if !tree.simplify() {
                        break;
                    }
                    iters += 1;
                    match test(tree.current()) {
                        // Still failing: keep the simpler input (and
                        // its message) and try to go simpler yet.
                        Err(TestCaseError::Fail(m)) => message = m,
                        // Passing or rejected: not a counterexample —
                        // back off to the last failing input.
                        Ok(()) | Err(TestCaseError::Reject(_)) => {
                            if !tree.complicate() {
                                break;
                            }
                        }
                    }
                }
                return Err(Failure {
                    case: accepted,
                    seed,
                    original,
                    minimized: tree.current(),
                    shrink_iters: iters,
                    message,
                });
            }
        }
    }
    Ok(())
}

/// Panicking wrapper over [`run_reporting`]: reports the minimized
/// input, the original input, the case index, and the replay seed.
pub fn run<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: S,
    test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: fmt::Debug,
{
    if let Err(f) = run_reporting(name, config, &strategy, test) {
        panic!(
            "proptest `{name}` failed at case {case} (seed {seed:#x}): {message}\n\
             minimized input: {minimized:?}\n\
             original input: {original:?}\n\
             ({iters} shrink steps; replay with \
             `ProptestConfig::with_seed({seed:#x})`)",
            case = f.case,
            seed = f.seed,
            message = f.message,
            minimized = f.minimized,
            original = f.original,
            iters = f.shrink_iters,
        );
    }
}
