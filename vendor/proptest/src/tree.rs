//! Value trees: the shrinking half of the strategy architecture.
//!
//! A [`ValueTree`] is one sampled value plus the state needed to walk it
//! toward a simpler one. The contract mirrors real proptest:
//!
//! * `current()` returns the candidate value under consideration;
//! * `simplify()` moves `current` to a strictly simpler candidate and
//!   returns `true`, or returns `false` (leaving `current` unchanged)
//!   when no simpler candidate remains;
//! * `complicate()` rejects the most recent simplification: it restores
//!   `current` to the value it had before the last successful
//!   `simplify()` and narrows the search space so that simplification
//!   is not proposed again. It returns `false` when there is nothing
//!   to undo.
//!
//! The restore-exactly semantics of `complicate()` are what let the
//! runner (and the `Filter` combinator) treat the last failing value as
//! always recoverable: after any rejected simplification the tree's
//! `current()` is again a known-failing (or known-predicate-passing)
//! value.

use std::marker::PhantomData;

/// One generated value and its shrink state. See the module docs for
/// the `simplify`/`complicate` contract.
pub trait ValueTree {
    /// The type of value this tree yields.
    type Value;

    /// The candidate value under consideration.
    fn current(&self) -> Self::Value;

    /// Proposes a strictly simpler candidate; `false` when exhausted.
    fn simplify(&mut self) -> bool;

    /// Undoes the last simplification and narrows the search space;
    /// `false` when there is no simplification to undo.
    fn complicate(&mut self) -> bool;
}

/// Boxed value trees delegate, so `BoxedStrategy` can erase tree types.
impl<V> ValueTree for Box<dyn ValueTree<Value = V>> {
    type Value = V;

    fn current(&self) -> V {
        (**self).current()
    }

    fn simplify(&mut self) -> bool {
        (**self).simplify()
    }

    fn complicate(&mut self) -> bool {
        (**self).complicate()
    }
}

/// A tree that never shrinks (used by `Just` and other constants).
#[derive(Debug, Clone)]
pub struct NoShrink<T: Clone>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

/// Integer types an [`IntTree`] can shrink. All workspace integer types
/// round-trip losslessly through `i128`, which is wide enough to hold
/// the full `u64` and `i64` domains plus their magnitudes.
pub trait IntValue: Copy {
    /// Lossless widening conversion.
    fn to_i128(self) -> i128;
    /// Narrowing conversion; callers guarantee the value is in domain.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_int_value {
    ($($t:ty),*) => {$(
        impl IntValue for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_int_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Binary-search shrinker for integers: walks the candidate's distance
/// from `target` (the range's low end, or zero for `any`) down via
/// bisection. Internally everything is an `i128` magnitude, so the full
/// `u64`/`i64` domains are handled without overflow.
#[derive(Debug, Clone)]
pub struct IntTree<T> {
    target: i128,
    /// +1 or -1: which side of `target` the original value sits on.
    sign: i128,
    /// Current candidate's magnitude (distance from `target`).
    m_curr: i128,
    /// Smallest magnitude not yet ruled out by a rejected candidate.
    m_lo: i128,
    /// Magnitude before the last `simplify`, for exact restore.
    prev: Option<i128>,
    _ty: PhantomData<T>,
}

impl<T: IntValue> IntTree<T> {
    /// Tree shrinking `value` toward `target` (both in domain).
    pub fn new(value: T, target: T) -> Self {
        let d = value.to_i128() - target.to_i128();
        IntTree {
            target: target.to_i128(),
            sign: if d < 0 { -1 } else { 1 },
            m_curr: d.abs(),
            m_lo: 0,
            prev: None,
            _ty: PhantomData,
        }
    }
}

impl<T: IntValue> ValueTree for IntTree<T> {
    type Value = T;

    fn current(&self) -> T {
        T::from_i128(self.target + self.sign * self.m_curr)
    }

    fn simplify(&mut self) -> bool {
        if self.m_lo >= self.m_curr {
            return false;
        }
        let candidate = self.m_lo + (self.m_curr - self.m_lo) / 2;
        self.prev = Some(self.m_curr);
        self.m_curr = candidate;
        true
    }

    fn complicate(&mut self) -> bool {
        match self.prev.take() {
            None => false,
            Some(p) => {
                // The rejected candidate (and everything at least as
                // simple) is ruled out; restore the pre-simplify value.
                self.m_lo = self.m_curr + 1;
                self.m_curr = p;
                true
            }
        }
    }
}

/// Float types a [`FloatTree`] can shrink. `f32` routes through `f64`
/// (every `f32` is exactly representable, and rounding a midpoint back
/// to `f32` cannot leave the closed candidate interval).
pub trait FloatValue: Copy {
    /// Lossless widening conversion.
    fn to_f64(self) -> f64;
    /// Rounding narrowing conversion.
    fn from_f64(v: f64) -> Self;
}

impl FloatValue for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

impl FloatValue for f32 {
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

/// Bisection shrinker for floats: candidates stay in the closed
/// interval between `target` (the range's low end, or zero for `any`)
/// and the original value. The first candidate is the target itself;
/// after a rejection the search bisects, converging when midpoints
/// stop moving.
#[derive(Debug, Clone)]
pub struct FloatTree<T> {
    /// Boundary of the not-yet-ruled-out interval on the target side.
    lo: f64,
    /// Whether `lo` itself has already been tried and rejected.
    lo_tried: bool,
    curr: f64,
    prev: Option<f64>,
    _ty: PhantomData<T>,
}

impl<T: FloatValue> FloatTree<T> {
    /// Tree shrinking `value` toward `target` (both finite, in domain).
    pub fn new(value: T, target: T) -> Self {
        FloatTree {
            lo: target.to_f64(),
            lo_tried: false,
            curr: value.to_f64(),
            prev: None,
            _ty: PhantomData,
        }
    }
}

impl<T: FloatValue> ValueTree for FloatTree<T> {
    type Value = T;

    fn current(&self) -> T {
        T::from_f64(self.curr)
    }

    fn simplify(&mut self) -> bool {
        // Probe the target itself before bisecting: components that do
        // not carry the failure collapse to `lo` in one step, instead
        // of halving until the ulp underflows (which for a zero target
        // would eat the whole shrink budget on a single component).
        let candidate = if self.lo_tried { self.lo + (self.curr - self.lo) / 2.0 } else { self.lo };
        if !candidate.is_finite() || candidate == self.curr {
            return false;
        }
        if candidate == self.lo && self.lo_tried {
            return false;
        }
        self.prev = Some(self.curr);
        self.curr = candidate;
        true
    }

    fn complicate(&mut self) -> bool {
        match self.prev.take() {
            None => false,
            Some(p) => {
                self.lo = self.curr;
                self.lo_tried = true;
                self.curr = p;
                true
            }
        }
    }
}

/// `true` shrinks to `false` exactly once.
#[derive(Debug, Clone)]
pub struct BoolTree {
    curr: bool,
    can_simplify: bool,
    can_complicate: bool,
}

impl BoolTree {
    /// Tree for a sampled boolean.
    pub fn new(value: bool) -> Self {
        BoolTree { curr: value, can_simplify: value, can_complicate: false }
    }
}

impl ValueTree for BoolTree {
    type Value = bool;

    fn current(&self) -> bool {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        if self.can_simplify {
            self.curr = false;
            self.can_simplify = false;
            self.can_complicate = true;
            true
        } else {
            false
        }
    }

    fn complicate(&mut self) -> bool {
        if self.can_complicate {
            self.curr = true;
            self.can_complicate = false;
            true
        } else {
            false
        }
    }
}
