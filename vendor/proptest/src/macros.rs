//! The `proptest!` test-definition macro and its assertion helpers.
//!
//! All macros are `#[macro_export]`, so they live at the crate root
//! regardless of this module; the surface is source-compatible with
//! the pre-shrinking stub (and with real proptest for the forms the
//! workspace uses).

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in any::<u64>(), v in prop::collection::vec(0u8..9, 0..16)) {
///         prop_assert!(x == x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
///
/// All arguments are bundled into one tuple strategy so a single value
/// tree shrinks every argument together; the tuple tree draws its
/// components in argument order, preserving the RNG stream of the old
/// per-argument sampling expansion byte for byte.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ($($strat,)*);
                $crate::test_runner::run(
                    stringify!($name),
                    &__config,
                    __strategy,
                    |($($arg,)*)| {
                        let mut __case =
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            };
                        __case()
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current inputs (resampled without counting as a case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}
