//! Tier-1 chaos-harness invariants: seed-driven fault injection must be
//! replay-deterministic (same spec ⇒ byte-identical reports, regardless
//! of how many campaign workers run the jobs), and a disabled chaos
//! schedule must consume no randomness at all.

use raven_core::{run_sweep, ExecutorConfig, SimConfig, Simulation};
use raven_verify::{run_chaos_session, run_oracles, suite_thresholds, Expectations, VerifySpec};
use simbus::ChaosConfig;

/// The short verification specs the worker-count sweep replays (sized
/// for debug-mode tier-1 runtime).
fn sweep_specs() -> Vec<VerifySpec> {
    vec![
        VerifySpec::clean(11).with_chaos(ChaosConfig::standard()).with_session_ms(1_500),
        VerifySpec::estop_attack(12).with_chaos(ChaosConfig::link_only()).with_session_ms(1_500),
        VerifySpec::observe_attack(13).with_chaos(ChaosConfig::standard()).with_session_ms(1_500),
        VerifySpec::clean(14).with_chaos(ChaosConfig::link_only()).with_session_ms(1_500),
    ]
}

/// Runs every sweep spec through the campaign executor and returns the
/// concatenated serialized reports, in spec order.
fn sweep_reports(workers: usize) -> String {
    let specs = sweep_specs();
    let thresholds = suite_thresholds();
    let config =
        if workers == 1 { ExecutorConfig::serial() } else { ExecutorConfig::with_workers(workers) };
    let sweep = run_sweep(
        "chaos-verify",
        specs.len(),
        &config,
        |i| specs[i].seed,
        |i, _seed| run_chaos_session(&specs[i], thresholds).to_json(),
    );
    let mut joined = String::new();
    for outcome in sweep.outcomes {
        joined.push_str(&outcome.expect("chaos job must not panic"));
        joined.push('\n');
    }
    joined
}

/// Same (scenario, chaos seed) ⇒ byte-identical reports for any worker
/// count: the chaos schedule is derived from the root seed, never from
/// scheduling order.
#[test]
fn chaos_replay_is_byte_identical_across_worker_counts() {
    let serial = sweep_reports(1);
    for workers in [2, 4] {
        let parallel = sweep_reports(workers);
        assert_eq!(
            serial, parallel,
            "chaos reports must not depend on the worker count (workers={workers})"
        );
    }
}

/// The attacked spec in the sweep must still boot, detect, and E-STOP
/// under link chaos — a light oracle pass wired into tier-1.
#[test]
fn short_estop_spec_passes_light_oracles() {
    let spec =
        VerifySpec::estop_attack(12).with_chaos(ChaosConfig::link_only()).with_session_ms(1_500);
    let report = run_chaos_session(&spec, suite_thresholds());
    let oracles = run_oracles(
        &report,
        &Expectations {
            must_boot: true,
            must_detect: true,
            must_estop: true,
            ..Expectations::default()
        },
    );
    assert!(oracles.passed(), "oracle failures:\n{}", oracles.failure_summary());
}

/// A disabled chaos schedule consumes zero RNG: installing
/// `ChaosConfig::off()` leaves the run byte-identical to never calling
/// `install_chaos` at all.
#[test]
fn chaos_off_consumes_no_rng() {
    let run = |install_off: bool| {
        let mut sim = Simulation::new(SimConfig { session_ms: 1_200, ..SimConfig::standard(77) });
        if install_off {
            let scheduled = sim.install_chaos(&ChaosConfig::off());
            assert_eq!(scheduled, 0, "ChaosConfig::off() must schedule nothing");
        }
        sim.boot();
        let outcome = sim.run_session();
        let metrics = sim.metrics();
        format!(
            "{}\n{}",
            serde_json::to_string_pretty(&outcome).expect("outcome serializes"),
            serde_json::to_string_pretty(&metrics).expect("metrics serialize"),
        )
    };
    assert_eq!(run(false), run(true), "ChaosConfig::off() must not perturb the run");
}
