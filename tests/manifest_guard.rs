//! Signed-manifest guard: every golden artifact (`results/*.json`,
//! `tests/fixtures/golden_*.json`) must match its content address in
//! `results/MANIFEST.json`, the manifest's HMAC signature must verify,
//! and the manifest must be *complete* — covering exactly the candidate
//! set, no more, no less. Artifact drift, a stale manifest after adding
//! a new result, or a hand-edited manifest all fail here.
//!
//! To re-seal after an intentional artifact change:
//!
//! ```text
//! RAVEN_UPDATE_GOLDEN=1 cargo test --test manifest_guard
//! # or: cargo run --bin raven-sim -- ledger manifest --update
//! ```

use raven_core::{manifest_candidates, MANIFEST_REL_PATH};
use raven_ledger::Manifest;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn manifest_is_signed_complete_and_artifacts_match() {
    let root = repo_root();
    let path = root.join(MANIFEST_REL_PATH);
    let candidates = manifest_candidates(root).expect("enumerate golden artifacts");

    if std::env::var_os("RAVEN_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        let manifest = Manifest::from_files(root, &candidates).expect("hash artifacts");
        std::fs::write(&path, manifest.to_json_pretty()).expect("write manifest");
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing {} ({e}); run with RAVEN_UPDATE_GOLDEN=1 to create it", path.display())
    });
    let manifest = Manifest::from_json(&text).expect("manifest parses");

    // Hashes, sizes, and the signature over the canonical body.
    if let Err(e) = manifest.verify_files(root) {
        panic!(
            "manifest verification failed; if the artifact change is intentional, \
             re-seal with RAVEN_UPDATE_GOLDEN=1 and review the diff:\n{e}"
        );
    }

    // Completeness, both directions: a new golden artifact missing from
    // the manifest is as much drift as a stale entry for a deleted one.
    let listed: Vec<&str> = manifest.entries.keys().map(String::as_str).collect();
    let expected: Vec<&str> = candidates.iter().map(String::as_str).collect();
    assert_eq!(
        listed, expected,
        "manifest entry set disagrees with the golden-artifact candidates on disk; \
         re-seal with RAVEN_UPDATE_GOLDEN=1"
    );
}

/// The signature is load-bearing: re-signing a doctored manifest with
/// the wrong key — or editing an entry without re-signing — must fail.
#[test]
fn edited_manifest_fails_signature_check() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join(MANIFEST_REL_PATH)).expect("read manifest");
    let tampered_text = text.replacen("\"bytes\": ", "\"bytes\": 1", 1);
    assert_ne!(tampered_text, text, "tamper edit must change the manifest");
    let tampered = Manifest::from_json(&tampered_text).expect("tampered manifest still parses");
    assert!(!tampered.signature_valid(), "an edited manifest must not carry a valid signature");
}
