//! Golden-artifact guard: reduced-scale Table IV and Fig. 9 runs must
//! serialize byte-identically to the checked-in fixtures under
//! `tests/fixtures/`. Any change to the simulation, the detector, the
//! training protocol, or the campaign merge order shows up here as a
//! fixture diff — reviewed deliberately, never silently.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! RAVEN_UPDATE_GOLDEN=1 cargo test --test golden_artifacts
//! ```

use raven_core::experiments::{run_fig9_with, run_table4_with, Fig9Config, Table4Config};
use raven_core::training::TrainingConfig;
use raven_core::ExecutorConfig;
use std::path::PathBuf;

/// Reduced Table IV protocol: small enough for tier-1, real enough to
/// exercise training, both scenarios, and the metric merge.
fn golden_table4() -> Table4Config {
    Table4Config {
        scenario_a_runs: 6,
        scenario_b_runs: 6,
        session_ms: 1_500,
        training: TrainingConfig { runs: 4, ..TrainingConfig::quick(5) },
        ..Table4Config::quick(5)
    }
}

/// Reduced Fig. 9 sweep: one hot value, two durations.
fn golden_fig9() -> Fig9Config {
    Fig9Config {
        values: vec![30_000],
        durations_ms: vec![4, 128],
        repetitions: 2,
        session_ms: 1_500,
        training: TrainingConfig { runs: 4, ..TrainingConfig::quick(5) },
        seed: 5,
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Compares `actual` against the named fixture, or rewrites the fixture
/// when `RAVEN_UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("RAVEN_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with RAVEN_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the checked-in golden fixture; if the change is \
         intentional, regenerate with RAVEN_UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn table4_matches_golden_fixture() {
    let result = run_table4_with(&golden_table4(), &ExecutorConfig::serial());
    let json = serde_json::to_string_pretty(&result).expect("serialize table4");
    assert_golden("golden_table4.json", &json);

    // The same protocol on two workers must reproduce the fixture too:
    // the guard also pins worker-count independence at golden scale.
    let parallel = run_table4_with(&golden_table4(), &ExecutorConfig::with_workers(2));
    let parallel_json = serde_json::to_string_pretty(&parallel).expect("serialize table4");
    assert_eq!(json, parallel_json, "table4 golden run diverged at workers=2");
}

#[test]
fn fig9_matches_golden_fixture() {
    let result = run_fig9_with(&golden_fig9(), &ExecutorConfig::serial());
    let json = serde_json::to_string_pretty(&result).expect("serialize fig9");
    assert_golden("golden_fig9.json", &json);

    let parallel = run_fig9_with(&golden_fig9(), &ExecutorConfig::with_workers(2));
    let parallel_json = serde_json::to_string_pretty(&parallel).expect("serialize fig9");
    assert_eq!(json, parallel_json, "fig9 golden run diverged at workers=2");
}
