//! Tier-1 guard for the static audit: the workspace must pass
//! `cargo run -p raven-lint`, and the seeded fixture workspace must fail
//! it with every rule represented. This keeps the audit inside the plain
//! `cargo test -q` gate (the per-rule fixture suite lives in
//! `crates/raven-lint/tests/` and runs with the workspace tests).

use std::path::Path;
use std::process::Command;

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "raven-lint", "--", "--json", "--root"])
        .arg(root)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run -p raven-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.success(), format!("{stdout}\n{stderr}"))
}

#[test]
fn workspace_passes_its_own_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(root.join("raven-lint.toml").is_file());
    let (ok, output) = run_lint(root);
    assert!(ok, "the workspace must pass its own static audit:\n{output}");
}

#[test]
fn seeded_violations_fail_the_audit() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/raven-lint/tests/fixtures/ws");
    let (ok, output) = run_lint(&ws);
    assert!(!ok, "the seeded fixture workspace must fail the audit:\n{output}");
    for rule in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "CONFIG"] {
        assert!(
            output.contains(&format!("\"rule\": \"{rule}\"")),
            "rule {rule} missing from findings:\n{output}"
        );
    }
}
