//! Tier-1 guard for the static audit: the workspace must pass
//! `cargo run -p raven-lint` with pinned scan/finding/exception counts,
//! and the seeded fixture workspace must fail it with every rule
//! represented. This keeps the audit inside the plain `cargo test -q`
//! gate (the per-rule fixture suite lives in `crates/raven-lint/tests/`
//! and runs with the workspace tests).

use std::path::Path;
use std::process::Command;

fn run_lint(root: &Path) -> (bool, String, String) {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "raven-lint", "--", "--json", "--root"])
        .arg(root)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run -p raven-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn workspace_passes_its_own_audit_with_pinned_counts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    assert!(root.join("raven-lint.toml").is_file());
    let (ok, stdout, stderr) = run_lint(root);
    assert!(ok, "the workspace must pass its own static audit:\n{stdout}\n{stderr}");

    // The summary line pins the audit's shape: zero findings, and the
    // audited-exception count must move deliberately — an exception that
    // appears (or vanishes) without this number being updated is exactly
    // the drift the allowlist is supposed to make loud.
    let summary = stderr
        .lines()
        .find(|l| l.contains("file(s) scanned"))
        .unwrap_or_else(|| panic!("no summary line in stderr:\n{stderr}"));
    let grab = |marker: &str| -> usize {
        let end = summary.find(marker).unwrap_or_else(|| panic!("`{marker}` in: {summary}"));
        summary[..end]
            .rsplit(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no count before `{marker}` in: {summary}"))
    };
    assert_eq!(grab(" finding(s)"), 0, "{summary}");
    assert_eq!(grab(" allowlisted exception(s)"), 79, "{summary}");
    let scanned = grab(" file(s) scanned");
    assert!(
        (140..=220).contains(&scanned),
        "scanned file count drifted out of the expected band: {summary}"
    );
}

#[test]
fn seeded_violations_fail_the_audit() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/raven-lint/tests/fixtures/ws");
    let (ok, stdout, stderr) = run_lint(&ws);
    assert!(!ok, "the seeded fixture workspace must fail the audit:\n{stdout}\n{stderr}");
    for rule in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "CONFIG"] {
        assert!(
            stdout.contains(&format!("\"rule\": \"{rule}\"")),
            "rule {rule} missing from findings:\n{stdout}"
        );
    }
}
