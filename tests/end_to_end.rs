//! Cross-crate integration tests: the full system, attack and defense,
//! spanning every crate in the workspace.

use raven_core::training::{train_thresholds, TrainingConfig};
use raven_core::{AttackSetup, DetectorSetup, SimConfig, Simulation, Workload};
use raven_detect::{DetectorConfig, Mitigation};

fn quick_thresholds(seed: u64) -> raven_detect::DetectionThresholds {
    train_thresholds(&TrainingConfig { runs: 8, ..TrainingConfig::quick(seed) }).thresholds
}

/// The paper's headline, end to end: the TOCTOU torque injection jumps the
/// undefended arm; the dynamic-model guard stops the identical attack.
#[test]
fn defense_stops_the_attack_the_undefended_robot_suffers() {
    let attack = AttackSetup::ScenarioB {
        dac_delta: 30_000,
        channel: 0,
        delay_packets: 400,
        duration_packets: 256,
    };

    // Undefended.
    let mut undefended = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 4_000,
        ..SimConfig::standard(8)
    });
    undefended.install_attack(&attack);
    undefended.boot();
    let hit = undefended.run_session();
    assert!(hit.adverse, "undefended robot must jump: {hit:?}");

    // Defended (same seed, same attack, guard armed with E-STOP policy).
    let thresholds = quick_thresholds(3);
    let mut defended = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 4_000,
        detector: Some(DetectorSetup {
            config: DetectorConfig { mitigation: Mitigation::EStop, ..DetectorConfig::default() },
            model_perturbation: 0.02,
            thresholds: Some(thresholds),
        }),
        ..SimConfig::standard(8)
    });
    defended.install_attack(&attack);
    defended.boot();
    let saved = defended.run_session();
    assert!(saved.model_detected, "guard must detect: {saved:?}");
    assert!(!saved.adverse, "guard must prevent the jump: {saved:?}");
    assert!(
        saved.max_ee_step_2ms < hit.max_ee_step_2ms,
        "defended jump ({}) must be smaller than undefended ({})",
        saved.max_ee_step_2ms,
        hit.max_ee_step_2ms
    );
}

/// Block-and-hold preserves availability: the session survives the attack.
#[test]
fn block_and_hold_keeps_the_session_alive() {
    let thresholds = quick_thresholds(5);
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Suturing,
        session_ms: 4_000,
        detector: Some(DetectorSetup {
            config: DetectorConfig {
                mitigation: Mitigation::BlockAndHold,
                ..DetectorConfig::default()
            },
            model_perturbation: 0.02,
            thresholds: Some(thresholds),
        }),
        ..SimConfig::standard(11)
    });
    sim.install_attack(&AttackSetup::ScenarioB {
        dac_delta: 28_000,
        channel: 1,
        delay_packets: 300,
        duration_packets: 128,
    });
    sim.boot();
    let out = sim.run_session();
    assert!(out.model_detected);
    assert!(!out.adverse, "{out:?}");
    assert_eq!(out.final_state, "Pedal Down", "session must survive: {out:?}");
    assert!(out.estop.is_none());
}

/// A defended *clean* session must not be disturbed by the guard
/// (false alarms may occur, but must not halt or jump the robot under the
/// availability-preserving policy).
#[test]
fn guard_is_transparent_on_clean_runs() {
    let thresholds = quick_thresholds(7);
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 4_000,
        detector: Some(DetectorSetup {
            config: DetectorConfig {
                mitigation: Mitigation::BlockAndHold,
                ..DetectorConfig::default()
            },
            model_perturbation: 0.02,
            thresholds: Some(thresholds),
        }),
        ..SimConfig::standard(13)
    });
    sim.boot();
    let out = sim.run_session();
    assert!(!out.adverse);
    assert_eq!(out.final_state, "Pedal Down");
    assert!(out.controller_fault.is_none(), "{out:?}");
}

/// The full malware lifecycle uses only information leaked on the bus:
/// logging wrapper → byte analysis → trigger derivation → injection.
#[test]
fn malware_lifecycle_discovers_trigger_from_live_traffic() {
    use raven_attack::{capture_log, find_state_byte, LoggingWrapper};

    let log = capture_log();
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Suturing,
        session_ms: 3_500,
        pedal: raven_core::sim::PedalPattern::DutyCycle { work_ms: 700, rest_ms: 250, cycles: 3 },
        ..SimConfig::standard(17)
    });
    sim.rig_mut().channel.install_first(Box::new(LoggingWrapper::new(std::sync::Arc::clone(&log))));
    sim.boot();
    let _ = sim.run_session();

    let capture = log.lock().clone();
    let hypothesis = find_state_byte(&capture).expect("live traffic must leak the state byte");
    assert_eq!(hypothesis.offset, 0);
    assert_eq!(hypothesis.watchdog_mask, Some(0x10));
    let mut triggers = hypothesis.trigger_values();
    triggers.sort_unstable();
    assert_eq!(triggers, vec![0x0F, 0x1F]);
}

/// Network degradation (lossy link) does not destabilize the clean system —
/// the controller holds on stale input.
#[test]
fn lossy_network_degrades_gracefully() {
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 3_000,
        link: simbus::LinkConfig::lossy_wan(0.3),
        ..SimConfig::standard(19)
    });
    sim.boot();
    let out = sim.run_session();
    assert!(!out.adverse, "packet loss alone must not jump the arm: {out:?}");
    assert!(out.controller_fault.is_none());
}

/// Determinism across the whole stack: same seed, same outcome, different
/// seed, different trajectory details.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(SimConfig { session_ms: 1_500, ..SimConfig::standard(seed) });
        sim.install_attack(&AttackSetup::ScenarioB {
            dac_delta: 24_000,
            channel: 0,
            delay_packets: 300,
            duration_packets: 64,
        });
        sim.boot();
        let out = sim.run_session();
        (out.max_ee_step_2ms.to_bits(), out.ticks, out.injections)
    };
    assert_eq!(run(23), run(23));
    assert_ne!(run(23), run(24));
}

/// The motion-gated attack (read-path eavesdropping feeding the trigger)
/// fires only while the robot is actually moving.
#[test]
fn motion_gated_attack_strikes_only_during_motion() {
    use raven_attack::{
        motion_gated_attack, ActivationWindow, Corruption, GatedInjection, MotionSensor,
    };

    let run = |threshold: f64| {
        let mut sim = Simulation::new(SimConfig {
            workload: Workload::Reach, // moves ~3 s, then holds still
            session_ms: 5_000,
            ..SimConfig::standard(29)
        });
        let (sensor, gate): (MotionSensor, GatedInjection) = motion_gated_attack(
            Corruption::AddDacWord { channel: 0, delta: 30_000 },
            ActivationWindow::delayed(200, 256),
            threshold,
        );
        sim.rig_mut().channel.install_read(Box::new(sensor));
        sim.rig_mut().channel.install_first(Box::new(gate));
        sim.boot();
        sim.run_session()
    };

    // A realistic activity threshold (encoder counts/packet): the reach
    // produces ~10–15, tremor-only holding ~2–4.
    let active = run(6.0);
    assert!(active.injections > 0, "gate must open during motion: {active:?}");

    // An absurd threshold: the robot never looks "active enough"; the
    // malware never corrupts a single packet and the session stays clean.
    let idle = run(1e12);
    assert_eq!(idle.injections, 0, "{idle:?}");
    assert!(!idle.adverse);
    assert!(idle.controller_fault.is_none());
}

/// Increments apply exactly once even when network jitter batches packets,
/// and console silence drops the robot to a safe stop (pedal-up semantics).
#[test]
fn console_silence_stops_the_robot() {
    // A link that dies partway through the session.
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 3_000,
        ..SimConfig::standard(31)
    });
    sim.boot();
    // Run 1 s of normal teleop, then cut the console by switching the link
    // to 100% loss.
    for _ in 0..1_000 {
        sim.step();
    }
    sim.install_attack(&AttackSetup::DropItp);
    let mut outcome = None;
    for _ in 0..1_000 {
        sim.step();
        if sim.controller().state_machine().state() == raven_hw::RobotState::PedalUp {
            outcome = Some(sim.now());
            break;
        }
    }
    assert!(
        outcome.is_some(),
        "console silence must drop the robot to Pedal Up within the timeout"
    );
}

/// Telemetry publishes on the ROS-style bus, and learned thresholds survive
/// a JSON round trip into a new deployment.
#[test]
fn telemetry_bus_and_threshold_persistence() {
    // Train once, persist, reload — the production workflow.
    let trained = quick_thresholds(37);
    let json = trained.to_json().expect("thresholds serialize");
    let reloaded = raven_detect::DetectionThresholds::from_json(&json).unwrap();
    // JSON float formatting may lose the final ULP; verify to full printed
    // precision rather than bit equality.
    for i in 0..3 {
        assert!((reloaded.motor_accel[i] - trained.motor_accel[i]).abs() < 1e-9);
        assert!((reloaded.motor_vel[i] - trained.motor_vel[i]).abs() < 1e-12);
        assert!((reloaded.joint_vel[i] - trained.joint_vel[i]).abs() < 1e-15);
    }

    let mut sim = Simulation::new(SimConfig {
        session_ms: 1_500,
        detector: Some(DetectorSetup {
            config: DetectorConfig::default(),
            model_perturbation: 0.02,
            thresholds: Some(reloaded),
        }),
        ..SimConfig::standard(37)
    });
    let mut sub = sim.telemetry_bus().subscribe();
    sim.boot();
    let _ = sim.run_session();
    let frames = sub.drain();
    assert!(frames.len() > 1_000, "telemetry must stream every cycle: {}", frames.len());
    // Frames carry real state: the last ones are Pedal Down with a target.
    let last = frames.last().unwrap();
    assert_eq!(last.state, raven_hw::RobotState::PedalDown);
    assert!(last.pos_d.is_some());
}

/// The guard also catches attacks on the *feedback* path: a phantom encoder
/// offset makes the controller slam the arm; the model's prediction of that
/// command's consequence trips the alarm.
#[test]
fn guard_detects_encoder_feedback_attacks() {
    let thresholds = quick_thresholds(41);
    let mut sim = Simulation::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 4_000,
        detector: Some(DetectorSetup {
            config: DetectorConfig { mitigation: Mitigation::Observe, ..DetectorConfig::default() },
            model_perturbation: 0.02,
            thresholds: Some(thresholds),
        }),
        ..SimConfig::standard(43)
    });
    sim.install_attack(&AttackSetup::EncoderCorruption {
        channel: 2,
        offset_counts: 12_000,
        delay_reads: 3_200,
    });
    sim.boot();
    let out = sim.run_session();
    assert!(
        out.model_detected,
        "phantom encoder jump must look like (and be treated as) unsafe motion: {out:?}"
    );
}

/// Dual-arm session, end to end: an attack on the gold arm is invisible in
/// the green arm's registries, and the combined registry is exactly the
/// per-arm registries merged in run order (gold first) — the same
/// discipline the campaign executor uses across runs.
#[test]
fn dual_arm_attack_isolation_and_run_order_merge() {
    use raven_core::{Arm, DualArmSession};

    let mut dual = DualArmSession::new(SimConfig {
        workload: Workload::Circle,
        session_ms: 3_000,
        ..SimConfig::standard(19)
    });
    dual.install_attack(
        Arm::Gold,
        &AttackSetup::ScenarioB {
            dac_delta: 30_000,
            channel: 0,
            delay_packets: 400,
            duration_packets: 256,
        },
    );
    dual.boot();
    let out = dual.run_session(3_000);

    // Per-arm independence: every injection the attack landed is in the
    // gold arm's registry, none in the green arm's.
    assert!(out.arm(Arm::Gold).adverse, "attacked arm must jump: {out:?}");
    assert!(!out.arm(Arm::Green).adverse, "clean arm must be untouched: {out:?}");
    assert!(out.metrics(Arm::Gold).counter("attack.injections") > 0);
    assert_eq!(out.metrics(Arm::Green).counter("attack.injections"), 0);
    assert!(out.events(Arm::Green).iter().all(|e| e.kind != "attack.injection"));

    // `merged()` must equal a manual gold-then-green run-order merge,
    // byte for byte.
    let mut manual = out.metrics(Arm::Gold).clone();
    manual.merge(out.metrics(Arm::Green));
    assert_eq!(
        serde_json::to_string(&out.merged()).expect("serialize merged"),
        serde_json::to_string(&manual).expect("serialize manual merge"),
        "DualOutcome::merged() must be the run-order merge of the per-arm registries"
    );
}
